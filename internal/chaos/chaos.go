// Package chaos provides seeded, deterministic fault injection for the SCSQ
// engine. The paper's coordinators own node placement on a 768-node
// BlueGene partition (§2.2); at that scale dial failures, mid-stream
// resets, lost frames and whole-node crashes are the steady state, not the
// exception. An Injector is consulted by the carriers (mpicar, tcpcar,
// udpcar) on every dial and every frame send, and decides — purely from the
// seed and the (source, destination, sequence) coordinates of the event —
// whether to inject a fault. The same seed therefore reproduces the same
// fault schedule run after run, which is what makes chaos tests assertable:
// a killed node is killed at the same frame of the same stream every time.
//
// Faults come in two families. Rate faults (dial timeouts, connection
// resets, frame drops, corruption, added latency) fire per-event from a
// hash of the seed and the event coordinates. Crash schedules
// (CrashAfterSends, CrashAtVTime) kill a whole compute node at a
// deterministic point of its own traffic; a dead node refuses dials,
// fails every send touching it, and is reported to crash listeners so the
// control plane (coordinator + supervisor) can mark it dead in the compute
// node database and kill its resident RPs.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sync"

	"scsq/internal/carrier"
	"scsq/internal/hw"
	"scsq/internal/metrics"
	"scsq/internal/vtime"
)

// NodeRef names one compute node of the environment.
type NodeRef struct {
	Cluster hw.ClusterName
	Node    int
}

func (n NodeRef) String() string { return fmt.Sprintf("%s:%d", n.Cluster, n.Node) }

// Verdict is the injector's decision about one frame send. The zero value
// is "no fault".
type Verdict struct {
	// Err, if non-nil, fails the send without delivering the frame. It
	// wraps a typed carrier error (ErrPeerReset, ErrNodeDown).
	Err error
	// Drop silently loses the frame: the sender is charged and told the
	// send succeeded, but the receiver never sees it.
	Drop bool
	// Delay is extra delivery latency added to the frame's arrival time.
	Delay vtime.Duration
	// CorruptByte, if >= 0, is the payload index whose byte the carrier
	// must flip before delivery.
	CorruptByte int
}

// Injector is a deterministic fault source. A nil *Injector is valid and
// injects nothing, so carriers consult it unconditionally. All methods are
// safe for concurrent use.
type Injector struct {
	seed int64

	dialFailFirst int
	dialFailRate  float64
	resetRate     float64
	dropRate      float64
	corruptRate   float64
	delayRate     float64
	maxDelay      vtime.Duration

	mu              sync.Mutex
	dead            map[NodeRef]bool
	crashAtV        map[NodeRef]vtime.Time
	crashAfterSends map[NodeRef]int
	sends           map[NodeRef]int
	dialAttempts    map[string]int
	listeners       []func(NodeRef)

	// Per-fault-kind injection counters ("chaos.<kind>"): faults used to be
	// injected silently, which made chaos-test failures hard to diagnose.
	// Handles are nil-safe no-ops until SetMetrics installs a registry.
	cDialDead    *metrics.Counter
	cDialTimeout *metrics.Counter
	cSendDead    *metrics.Counter
	cCrash       *metrics.Counter
	cReset       *metrics.Counter
	cDrop        *metrics.Counter
	cCorrupt     *metrics.Counter
	cDelay       *metrics.Counter
}

// Option configures an Injector.
type Option func(*Injector)

// FailFirstDials makes the first n dial attempts of every distinct
// (source, destination) pair fail with carrier.ErrDialTimeout. Combined
// with a retry budget > n, every connection eventually opens — the
// mechanism the dial-retry path is tested against.
func FailFirstDials(n int) Option {
	return func(i *Injector) { i.dialFailFirst = n }
}

// DialFailRate makes each dial attempt fail with probability p, hashed from
// the seed and the attempt coordinates.
func DialFailRate(p float64) Option {
	return func(i *Injector) { i.dialFailRate = p }
}

// ResetRate injects mid-stream connection resets (carrier.ErrPeerReset) on
// a fraction p of non-final frames.
func ResetRate(p float64) Option {
	return func(i *Injector) { i.resetRate = p }
}

// DropRate silently loses a fraction p of non-final frames.
func DropRate(p float64) Option {
	return func(i *Injector) { i.dropRate = p }
}

// CorruptRate flips one deterministic payload byte in a fraction p of
// non-final frames.
func CorruptRate(p float64) Option {
	return func(i *Injector) { i.corruptRate = p }
}

// DelayRate adds up to maxDelay of virtual delivery latency to a fraction p
// of frames.
func DelayRate(p float64, maxDelay vtime.Duration) Option {
	return func(i *Injector) {
		i.delayRate = p
		i.maxDelay = maxDelay
	}
}

// CrashAfterSends schedules node (cluster, node) to crash immediately after
// its n-th outbound frame. With one RP per BlueGene node this kills the
// resident RP at a deterministic point of its stream.
func CrashAfterSends(cluster hw.ClusterName, node, n int) Option {
	return func(i *Injector) { i.crashAfterSends[NodeRef{cluster, node}] = n }
}

// CrashAtVTime schedules node (cluster, node) to crash at the first frame
// it touches whose ready time is at or after t.
func CrashAtVTime(cluster hw.ClusterName, node int, t vtime.Time) Option {
	return func(i *Injector) { i.crashAtV[NodeRef{cluster, node}] = t }
}

// New returns an injector seeded with seed. The seed fully determines every
// rate-based fault decision.
func New(seed int64, opts ...Option) *Injector {
	i := &Injector{
		seed:            seed,
		dead:            make(map[NodeRef]bool),
		crashAtV:        make(map[NodeRef]vtime.Time),
		crashAfterSends: make(map[NodeRef]int),
		sends:           make(map[NodeRef]int),
		dialAttempts:    make(map[string]int),
	}
	for _, o := range opts {
		o(i)
	}
	return i
}

// SetMetrics exports every injected fault as a "chaos.<kind>" counter in
// reg. It must be called before the injector sees traffic (the engine wires
// it at construction).
func (i *Injector) SetMetrics(reg *metrics.Registry) {
	if i == nil || reg == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cDialDead = reg.Counter("chaos.dial_dead")
	i.cDialTimeout = reg.Counter("chaos.dial_timeout")
	i.cSendDead = reg.Counter("chaos.send_dead")
	i.cCrash = reg.Counter("chaos.crash")
	i.cReset = reg.Counter("chaos.reset")
	i.cDrop = reg.Counter("chaos.drop")
	i.cCorrupt = reg.Counter("chaos.corrupt")
	i.cDelay = reg.Counter("chaos.delay")
}

// OnCrash registers a listener invoked (once per node, outside the
// injector's lock) when a node transitions to dead — whether by schedule or
// by KillNode.
func (i *Injector) OnCrash(fn func(NodeRef)) {
	if i == nil || fn == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.listeners = append(i.listeners, fn)
}

// KillNode marks a node dead immediately and notifies crash listeners.
// Killing a dead node is a no-op.
func (i *Injector) KillNode(cluster hw.ClusterName, node int) {
	if i == nil {
		return
	}
	ref := NodeRef{cluster, node}
	i.mu.Lock()
	already := i.dead[ref]
	if !already {
		i.dead[ref] = true
		i.cCrash.Inc()
	}
	listeners := i.snapshotListenersLocked()
	i.mu.Unlock()
	if already {
		return
	}
	for _, fn := range listeners {
		fn(ref)
	}
}

// Revive clears a node's dead state so carriers touching it stop observing
// ErrNodeDown, and retires the node's crash schedules and send counter — a
// revived node is a fresh incarnation, not one about to re-fire its old
// crash point. Reviving a live node is a no-op. Crash listeners are not
// re-notified; the caller (core.Engine.ReviveNode) updates the CNDB side.
func (i *Injector) Revive(cluster hw.ClusterName, node int) {
	if i == nil {
		return
	}
	ref := NodeRef{cluster, node}
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.dead, ref)
	delete(i.crashAfterSends, ref)
	delete(i.crashAtV, ref)
	delete(i.sends, ref)
}

// NodeDead reports whether the node has crashed.
func (i *Injector) NodeDead(cluster hw.ClusterName, node int) bool {
	if i == nil {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.dead[NodeRef{cluster, node}]
}

// DeadNodes returns the crashed nodes, for reporting.
func (i *Injector) DeadNodes() []NodeRef {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]NodeRef, 0, len(i.dead))
	for ref := range i.dead {
		out = append(out, ref)
	}
	return out
}

// Dial decides the fate of one dial attempt from src to dst. It returns nil
// (proceed), a wrapped carrier.ErrDialTimeout (transient, retryable), or a
// wrapped carrier.ErrNodeDown when either endpoint has crashed.
func (i *Injector) Dial(src, dst NodeRef) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	if i.dead[src] || i.dead[dst] {
		i.cDialDead.Inc()
		i.mu.Unlock()
		return fmt.Errorf("chaos: dial %s->%s: %w", src, dst, carrier.ErrNodeDown)
	}
	key := src.String() + ">" + dst.String()
	attempt := i.dialAttempts[key]
	i.dialAttempts[key]++
	cDialTimeout := i.cDialTimeout
	i.mu.Unlock()

	if attempt < i.dialFailFirst {
		cDialTimeout.Inc()
		return fmt.Errorf("chaos: injected dial failure %d for %s->%s: %w", attempt+1, src, dst, carrier.ErrDialTimeout)
	}
	if i.dialFailRate > 0 && i.chance(saltDial, key, uint64(attempt)) < i.dialFailRate {
		cDialTimeout.Inc()
		return fmt.Errorf("chaos: injected dial failure for %s->%s: %w", src, dst, carrier.ErrDialTimeout)
	}
	return nil
}

// Hash salts keep the per-fault decision streams independent.
const (
	saltDial = iota + 1
	saltReset
	saltDrop
	saltCorrupt
	saltDelay
	saltDelayLen
	saltCorruptIdx
)

// OnSend decides the fate of frame seq from src to dst, ready at the given
// virtual time. It advances crash schedules (firing listeners when a node
// dies), then applies rate faults. Final (Last) frames are exempt from rate
// faults — the engine's termination protocol runs over the reliable control
// channel the paper's RPs maintain — but not from dead nodes: a crashed
// node sends nothing.
func (i *Injector) OnSend(src, dst NodeRef, seq uint64, ready vtime.Time, payloadLen int, last bool) Verdict {
	v := Verdict{CorruptByte: -1}
	if i == nil {
		return v
	}

	var crashed []NodeRef
	i.mu.Lock()
	i.sends[src]++
	if n, ok := i.crashAfterSends[src]; ok && !i.dead[src] && i.sends[src] > n {
		i.dead[src] = true
		crashed = append(crashed, src)
	}
	for _, ref := range [2]NodeRef{src, dst} {
		if t, ok := i.crashAtV[ref]; ok && !i.dead[ref] && ready >= t {
			i.dead[ref] = true
			crashed = append(crashed, ref)
		}
	}
	i.cCrash.Add(int64(len(crashed)))
	deadSrc, deadDst := i.dead[src], i.dead[dst]
	listeners := i.snapshotListenersLocked()
	cSendDead, cReset, cDrop, cCorrupt, cDelay := i.cSendDead, i.cReset, i.cDrop, i.cCorrupt, i.cDelay
	i.mu.Unlock()

	for _, ref := range crashed {
		for _, fn := range listeners {
			fn(ref)
		}
	}
	if deadSrc || deadDst {
		ref := src
		if !deadSrc {
			ref = dst
		}
		cSendDead.Inc()
		v.Err = fmt.Errorf("chaos: send %s->%s seq %d: node %s crashed: %w", src, dst, seq, ref, carrier.ErrNodeDown)
		return v
	}
	if last {
		return v
	}

	key := src.String() + ">" + dst.String()
	if i.resetRate > 0 && i.chance(saltReset, key, seq) < i.resetRate {
		cReset.Inc()
		v.Err = fmt.Errorf("chaos: injected reset on %s->%s seq %d: %w", src, dst, seq, carrier.ErrPeerReset)
		return v
	}
	if i.dropRate > 0 && i.chance(saltDrop, key, seq) < i.dropRate {
		cDrop.Inc()
		v.Drop = true
		return v
	}
	if i.corruptRate > 0 && payloadLen > 0 && i.chance(saltCorrupt, key, seq) < i.corruptRate {
		cCorrupt.Inc()
		v.CorruptByte = int(i.hash(saltCorruptIdx, key, seq) % uint64(payloadLen))
	}
	if i.delayRate > 0 && i.maxDelay > 0 && i.chance(saltDelay, key, seq) < i.delayRate {
		cDelay.Inc()
		v.Delay = vtime.Duration(i.hash(saltDelayLen, key, seq) % uint64(i.maxDelay))
	}
	return v
}

// snapshotListenersLocked copies the listener slice so it can be invoked
// outside the injector's lock. Caller holds mu.
func (i *Injector) snapshotListenersLocked() []func(NodeRef) {
	out := make([]func(NodeRef), len(i.listeners))
	copy(out, i.listeners)
	return out
}

// hash maps (seed, salt, key, seq) to a uniform uint64.
func (i *Injector) hash(salt int, key string, seq uint64) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	for b := 0; b < 8; b++ {
		buf[b] = byte(uint64(i.seed) >> (8 * b))
		buf[8+b] = byte(uint64(salt) >> (8 * b))
		buf[16+b] = byte(seq >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// chance maps (seed, salt, key, seq) to a uniform float64 in [0, 1).
func (i *Injector) chance(salt int, key string, seq uint64) float64 {
	return float64(i.hash(salt, key, seq)>>11) / float64(1<<53)
}
