package chaos

import (
	"errors"
	"testing"

	"scsq/internal/carrier"
	"scsq/internal/hw"
	"scsq/internal/metrics"
	"scsq/internal/vtime"
)

func ref(n int) NodeRef { return NodeRef{Cluster: hw.BlueGene, Node: n} }

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	if err := inj.Dial(ref(0), ref(1)); err != nil {
		t.Fatalf("nil injector dial: %v", err)
	}
	v := inj.OnSend(ref(0), ref(1), 0, 0, 100, false)
	if v.Err != nil || v.Drop || v.Delay != 0 || v.CorruptByte >= 0 {
		t.Fatalf("nil injector verdict = %+v, want none", v)
	}
	if inj.NodeDead(hw.BlueGene, 0) {
		t.Fatal("nil injector reports dead nodes")
	}
	inj.KillNode(hw.BlueGene, 0) // must not panic
}

func TestSameSeedSameFaultSchedule(t *testing.T) {
	verdicts := func(seed int64) []Verdict {
		inj := New(seed, ResetRate(0.1), DropRate(0.1), CorruptRate(0.1), DelayRate(0.1, vtime.Millisecond))
		out := make([]Verdict, 0, 200)
		for seq := uint64(0); seq < 200; seq++ {
			out = append(out, inj.OnSend(ref(1), ref(2), seq, 0, 64, false))
		}
		return out
	}
	a, b := verdicts(42), verdicts(42)
	for i := range a {
		av, bv := a[i], b[i]
		if (av.Err == nil) != (bv.Err == nil) || av.Drop != bv.Drop ||
			av.Delay != bv.Delay || av.CorruptByte != bv.CorruptByte {
			t.Fatalf("seq %d: same seed diverged: %+v vs %+v", i, av, bv)
		}
	}
	c := verdicts(43)
	same := true
	for i := range a {
		if (a[i].Err == nil) != (c[i].Err == nil) || a[i].Drop != c[i].Drop ||
			a[i].Delay != c[i].Delay || a[i].CorruptByte != c[i].CorruptByte {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-event fault schedules")
	}
}

func TestRateFaultsActuallyFire(t *testing.T) {
	inj := New(7, ResetRate(0.2), DropRate(0.2))
	var resets, drops int
	for seq := uint64(0); seq < 500; seq++ {
		v := inj.OnSend(ref(1), ref(2), seq, 0, 64, false)
		if v.Err != nil {
			if !errors.Is(v.Err, carrier.ErrPeerReset) {
				t.Fatalf("reset verdict error = %v, want ErrPeerReset", v.Err)
			}
			resets++
		}
		if v.Drop {
			drops++
		}
	}
	if resets == 0 || drops == 0 {
		t.Fatalf("resets=%d drops=%d over 500 sends at 20%%: rates never fired", resets, drops)
	}
}

func TestLastFramesExemptFromRateFaults(t *testing.T) {
	inj := New(7, ResetRate(0.9), DropRate(0.9), CorruptRate(0.9))
	for seq := uint64(0); seq < 100; seq++ {
		v := inj.OnSend(ref(1), ref(2), seq, 0, 64, true)
		if v.Err != nil || v.Drop || v.CorruptByte >= 0 {
			t.Fatalf("seq %d: Last frame drew a rate fault: %+v", seq, v)
		}
	}
}

func TestCrashAfterSends(t *testing.T) {
	inj := New(1, CrashAfterSends(hw.BlueGene, 1, 3))
	var crashed []NodeRef
	inj.OnCrash(func(n NodeRef) { crashed = append(crashed, n) })

	for seq := uint64(0); seq < 3; seq++ {
		if v := inj.OnSend(ref(1), ref(2), seq, 0, 64, false); v.Err != nil {
			t.Fatalf("send %d before crash point failed: %v", seq, v.Err)
		}
	}
	v := inj.OnSend(ref(1), ref(2), 3, 0, 64, false)
	if !errors.Is(v.Err, carrier.ErrNodeDown) {
		t.Fatalf("send past crash point: err = %v, want ErrNodeDown", v.Err)
	}
	if len(crashed) != 1 || crashed[0] != ref(1) {
		t.Fatalf("crash listeners saw %v, want exactly [%v]", crashed, ref(1))
	}
	if !inj.NodeDead(hw.BlueGene, 1) {
		t.Fatal("node 1 not reported dead")
	}
	// Dials touching the dead node refuse with ErrNodeDown; sends TO it
	// fail as well (and Last frames are not exempt from death).
	if err := inj.Dial(ref(0), ref(1)); !errors.Is(err, carrier.ErrNodeDown) {
		t.Fatalf("dial to dead node: %v, want ErrNodeDown", err)
	}
	if v := inj.OnSend(ref(0), ref(1), 0, 0, 64, true); !errors.Is(v.Err, carrier.ErrNodeDown) {
		t.Fatalf("Last frame to dead node: %v, want ErrNodeDown", v.Err)
	}
	// Killing again does not re-notify.
	inj.KillNode(hw.BlueGene, 1)
	if len(crashed) != 1 {
		t.Fatalf("re-kill re-notified listeners: %v", crashed)
	}
}

func TestCrashAtVTime(t *testing.T) {
	inj := New(1, CrashAtVTime(hw.BlueGene, 2, vtime.Time(1000)))
	if v := inj.OnSend(ref(1), ref(2), 0, 999, 64, false); v.Err != nil {
		t.Fatalf("send before crash vtime failed: %v", v.Err)
	}
	// Node 2 is the destination here; it dies the moment traffic at or past
	// the deadline touches it.
	if v := inj.OnSend(ref(1), ref(2), 1, 1000, 64, false); !errors.Is(v.Err, carrier.ErrNodeDown) {
		t.Fatalf("send at crash vtime: %v, want ErrNodeDown", v.Err)
	}
	if !inj.NodeDead(hw.BlueGene, 2) {
		t.Fatal("node 2 should be dead")
	}
}

func TestFailFirstDials(t *testing.T) {
	inj := New(1, FailFirstDials(2))
	for i := 0; i < 2; i++ {
		if err := inj.Dial(ref(1), ref(2)); !errors.Is(err, carrier.ErrDialTimeout) {
			t.Fatalf("dial %d: %v, want ErrDialTimeout", i, err)
		}
		if !carrier.IsTransient(inj.Dial(ref(3), ref(4))) {
			// distinct pair has its own first-N budget
			t.Fatal("injected dial failure must be transient")
		}
	}
	if err := inj.Dial(ref(1), ref(2)); err != nil {
		t.Fatalf("dial past first-N budget: %v", err)
	}
}

func TestDialRetryAbsorbsFirstNFailures(t *testing.T) {
	inj := New(1, FailFirstDials(2))
	dials := 0
	conn, err := carrier.DialRetry(carrier.DefaultRetryPolicy, func() (carrier.Conn, error) {
		dials++
		if err := inj.Dial(ref(1), ref(2)); err != nil {
			return nil, err
		}
		return nil, nil
	})
	if err != nil {
		t.Fatalf("retry should absorb 2 injected dial timeouts: %v", err)
	}
	if conn != nil || dials != 3 {
		t.Fatalf("dials = %d (want 3), conn = %v", dials, conn)
	}
}

func TestCorruptByteInRange(t *testing.T) {
	inj := New(11, CorruptRate(0.5))
	fired := false
	for seq := uint64(0); seq < 100; seq++ {
		v := inj.OnSend(ref(1), ref(2), seq, 0, 33, false)
		if v.Err != nil || v.Drop {
			continue
		}
		if v.CorruptByte >= 33 {
			t.Fatalf("seq %d: corrupt index %d out of payload range 33", seq, v.CorruptByte)
		}
		if v.CorruptByte >= 0 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("corruption never fired at 50%")
	}
}

// TestFaultCountersExported checks the per-fault-kind registry export: each
// injected fault kind increments its chaos.* counter, nil-safely.
func TestFaultCountersExported(t *testing.T) {
	var nilInj *Injector
	nilInj.SetMetrics(metrics.NewRegistry()) // must not panic

	reg := metrics.NewRegistry()
	inj := New(7, ResetRate(0.2), DropRate(0.2), CorruptRate(0.2), DelayRate(0.2, vtime.Millisecond))
	inj.SetMetrics(reg)

	var resets, drops, corrupts, delays int64
	for seq := uint64(0); seq < 500; seq++ {
		v := inj.OnSend(ref(1), ref(2), seq, 0, 64, false)
		if v.Err != nil {
			resets++
		}
		if v.Drop {
			drops++
		}
		if v.CorruptByte >= 0 {
			corrupts++
		}
		if v.Delay > 0 {
			delays++
		}
	}
	inj.KillNode(hw.BlueGene, 3)
	inj.KillNode(hw.BlueGene, 3) // re-kill must not double count
	if err := inj.Dial(ref(0), ref(3)); err == nil {
		t.Fatal("dial to dead node succeeded")
	}
	if v := inj.OnSend(ref(0), ref(3), 0, 0, 64, false); v.Err == nil {
		t.Fatal("send to dead node succeeded")
	}

	snap := reg.Snapshot()
	want := map[string]int64{
		"chaos.reset":     resets,
		"chaos.drop":      drops,
		"chaos.corrupt":   corrupts,
		"chaos.delay":     delays,
		"chaos.crash":     1,
		"chaos.dial_dead": 1,
		"chaos.send_dead": 1,
	}
	for name, v := range want {
		if got := snap.Counters[name]; got != v {
			t.Fatalf("%s = %d, want %d (snapshot %v)", name, got, v, snap.Counters)
		}
	}
	if resets == 0 || drops == 0 || corrupts == 0 || delays == 0 {
		t.Fatalf("rate faults never fired: resets=%d drops=%d corrupts=%d delays=%d", resets, drops, corrupts, delays)
	}
}

// TestDialTimeoutCounted exercises the injected-dial-failure counter.
func TestDialTimeoutCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	inj := New(1, FailFirstDials(2))
	inj.SetMetrics(reg)
	for i := 0; i < 2; i++ {
		if err := inj.Dial(ref(0), ref(1)); err == nil {
			t.Fatalf("dial %d unexpectedly succeeded", i)
		}
	}
	if err := inj.Dial(ref(0), ref(1)); err != nil {
		t.Fatalf("dial after budget: %v", err)
	}
	if got := reg.Snapshot().Counters["chaos.dial_timeout"]; got != 2 {
		t.Fatalf("chaos.dial_timeout = %d, want 2", got)
	}
}
