package udpcar

import (
	"testing"

	"scsq/internal/carrier"
	"scsq/internal/hw"
	"scsq/internal/tcpcar"
)

func be(n int) tcpcar.Endpoint { return tcpcar.Endpoint{Cluster: hw.BackEnd, Node: n} }
func bg(n int) tcpcar.Endpoint { return tcpcar.Endpoint{Cluster: hw.BlueGene, Node: n} }

func testFabric(t *testing.T, loss float64) *Fabric {
	t.Helper()
	env, err := hw.NewLOFAR()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFabric(env, loss)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFabricValidation(t *testing.T) {
	env, err := hw.NewLOFAR()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		if _, err := NewFabric(env, bad); err == nil {
			t.Errorf("loss rate %v should be rejected", bad)
		}
	}
}

func TestDialValidation(t *testing.T) {
	f := testFabric(t, 0)
	inbox := make(carrier.Inbox, 1)
	if _, err := f.Dial(bg(0), bg(1), inbox); err == nil {
		t.Error("BG-to-BG should fail")
	}
	if _, err := f.Dial(be(0), be(1), inbox); err == nil {
		t.Error("be-to-be should fail")
	}
	if _, err := f.Dial(be(99), bg(0), inbox); err == nil {
		t.Error("bad node should fail")
	}
}

func TestLosslessDeliversEverything(t *testing.T) {
	f := testFabric(t, 0)
	inbox := make(carrier.Inbox, 64)
	conn, err := f.Dial(be(1), bg(0), inbox)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 50
	for i := 0; i < frames; i++ {
		if _, err := conn.Send(carrier.Frame{Source: "a", Payload: make([]byte, 100)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Send(carrier.Frame{Source: "a", Last: true}); err != nil {
		t.Fatal(err)
	}
	if got := len(inbox); got != frames+1 {
		t.Errorf("delivered %d frames, want %d", got, frames+1)
	}
	sent, dropped := conn.Stats()
	if sent != frames+1 || dropped != 0 {
		t.Errorf("stats = %d sent, %d dropped", sent, dropped)
	}
}

func TestLossIsDeterministicAndProportional(t *testing.T) {
	run := func() (delivered int, dropped int64) {
		f := testFabric(t, 0.2)
		inbox := make(carrier.Inbox, 1100)
		conn, err := f.Dial(be(1), bg(0), inbox)
		if err != nil {
			t.Fatal(err)
		}
		const frames = 1000
		for i := 0; i < frames; i++ {
			if _, err := conn.Send(carrier.Frame{Source: "a", Payload: make([]byte, 64)}); err != nil {
				t.Fatal(err)
			}
		}
		_, d := conn.Stats()
		return len(inbox), d
	}
	d1, drop1 := run()
	d2, drop2 := run()
	if d1 != d2 || drop1 != drop2 {
		t.Fatalf("loss not deterministic: %d/%d vs %d/%d", d1, drop1, d2, drop2)
	}
	// Around 20% loss, with slack for the hash distribution.
	if drop1 < 120 || drop1 > 280 {
		t.Errorf("dropped %d of 1000 at 20%% loss rate", drop1)
	}
	if d1+int(drop1) != 1000 {
		t.Errorf("delivered %d + dropped %d != 1000", d1, drop1)
	}
}

func TestLastFrameAlwaysDelivered(t *testing.T) {
	f := testFabric(t, 0.9)
	inbox := make(carrier.Inbox, 128)
	conn, err := f.Dial(be(1), bg(0), inbox)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := conn.Send(carrier.Frame{Source: "a", Payload: []byte{1}, Last: i == 99}); err != nil {
			t.Fatal(err)
		}
	}
	sawLast := false
	for len(inbox) > 0 {
		if d := <-inbox; d.Last {
			sawLast = true
		}
	}
	if !sawLast {
		t.Error("the Last frame must survive any loss rate")
	}
}

func TestSendAfterClose(t *testing.T) {
	f := testFabric(t, 0)
	inbox := make(carrier.Inbox, 1)
	conn, err := f.Dial(be(1), bg(0), inbox)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(carrier.Frame{Source: "a"}); err != carrier.ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestDroppedFramesStillChargeTheSender(t *testing.T) {
	f := testFabric(t, 0.9)
	inbox := make(carrier.Inbox, 128)
	conn, err := f.Dial(be(1), bg(0), inbox)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := conn.Send(carrier.Frame{Source: "a", Payload: make([]byte, 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := f.Env().Node(hw.BackEnd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.NIC.BusyTime() == 0 {
		t.Error("the back-end NIC transmits datagrams whether or not they survive")
	}
	_, dropped := conn.Stats()
	if dropped == 0 {
		t.Error("a 90% loss rate should drop something in 50 frames")
	}
}
