// Package udpcar implements the UDP stream carrier variant the paper's
// hardware offers (§2.1: communication with the Linux clusters utilizes
// I/O nodes that provide TCP or UDP). UDP transport is best-effort:
// datagrams may be dropped at the overloaded I/O node, so a bandwidth
// measurement that counts arrays observes the loss directly.
//
// The cost model matches the TCP carrier's inbound path (back-end NIC →
// I/O-node forwarder → tree network), except that a dropped frame consumes
// the sender-side costs but never reaches the receiver. Loss is
// deterministic — a hash of the connection id and frame sequence number
// against the configured loss rate — so experiments are reproducible.
// End-of-stream frames are always delivered (the engine's termination
// protocol runs over the reliable control channel the paper's RPs maintain
// for control messages).
package udpcar

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"scsq/internal/carrier"
	"scsq/internal/chaos"
	"scsq/internal/hw"
	"scsq/internal/metrics"
	"scsq/internal/tcpcar"
	"scsq/internal/vtime"
)

// Fabric charges UDP transfers against a hardware environment.
type Fabric struct {
	env      *hw.Env
	inj      *chaos.Injector
	reg      *metrics.Registry
	lossRate float64
	nextID   atomic.Int64
}

// NewFabric returns a UDP fabric with the given datagram loss rate in
// [0, 1).
func NewFabric(env *hw.Env, lossRate float64) (*Fabric, error) {
	if lossRate < 0 || lossRate >= 1 {
		return nil, fmt.Errorf("udpcar: loss rate must be in [0,1), got %v", lossRate)
	}
	return &Fabric{env: env, lossRate: lossRate}, nil
}

// Env returns the underlying hardware environment.
func (f *Fabric) Env() *hw.Env { return f.env }

// SetInjector attaches a chaos injector consulted on every dial and send.
// It must be called before the first Dial; a nil injector disables
// injection.
func (f *Fabric) SetInjector(inj *chaos.Injector) { f.inj = inj }

// SetMetrics attaches a telemetry registry: every connection records
// per-link frame/byte counters, loss counts, and delivery-latency
// histograms. It must be called before the first Dial; nil disables
// recording.
func (f *Fabric) SetMetrics(reg *metrics.Registry) { f.reg = reg }

// Conn is a UDP stream connection from a back-end node into the BlueGene.
type Conn struct {
	fabric   *Fabric
	id       int64
	src, dst tcpcar.Endpoint
	inbox    carrier.Inbox

	// Resolved once at Dial; the per-datagram path charges them directly.
	srcNode *hw.Node
	ion     *hw.IONode

	srcRef, dstRef chaos.NodeRef
	abort          chan struct{}
	abortOnce      sync.Once

	// Metric handles resolved once at Dial; nil-safe no-ops without a
	// registry.
	mFrames  *metrics.Counter
	mBytes   *metrics.Counter
	mDrops   *metrics.Counter
	hDeliver *metrics.Histogram

	mu      sync.Mutex
	seq     uint64
	dropped int64
	sent    int64
	closed  bool
}

var _ carrier.Conn = (*Conn)(nil)

// Dial opens a UDP connection from src (a back-end node) to dst (a BG
// compute node), delivering into inbox.
func (f *Fabric) Dial(src, dst tcpcar.Endpoint, inbox carrier.Inbox) (*Conn, error) {
	if src.Cluster != hw.BackEnd || dst.Cluster != hw.BlueGene {
		return nil, fmt.Errorf("udpcar: only back-end → BlueGene streams use UDP, got %s -> %s", src, dst)
	}
	srcRef := chaos.NodeRef{Cluster: src.Cluster, Node: src.Node}
	dstRef := chaos.NodeRef{Cluster: dst.Cluster, Node: dst.Node}
	if err := f.inj.Dial(srcRef, dstRef); err != nil {
		return nil, fmt.Errorf("udpcar: %w", err)
	}
	srcNode, err := f.env.Node(src.Cluster, src.Node)
	if err != nil {
		return nil, fmt.Errorf("udpcar: %w", err)
	}
	ion, err := f.env.IONodeFor(dst.Node)
	if err != nil {
		return nil, fmt.Errorf("udpcar: %w", err)
	}
	id := f.nextID.Add(1)
	f.env.RegisterInbound(fmt.Sprintf("udp-%d-%s-%s", id, src, dst), src.Node, ion.ID)
	c := &Conn{
		fabric: f, id: id, src: src, dst: dst, inbox: inbox,
		srcNode: srcNode, ion: ion,
		srcRef: srcRef, dstRef: dstRef,
		abort: make(chan struct{}),
	}
	if f.reg != nil {
		link := fmt.Sprintf("udp:%s->%s", src, dst)
		c.mFrames = f.reg.Counter("link.frames." + link)
		c.mBytes = f.reg.Counter("link.bytes." + link)
		c.mDrops = f.reg.Counter("link.drops." + link)
		c.hDeliver = f.reg.Histogram("link.deliver_vt.udp")
	}
	return c, nil
}

// Send implements carrier.Conn. Dropped frames consume sender-side costs
// but are not delivered; Last frames always arrive.
func (c *Conn) Send(fr carrier.Frame) (vtime.Time, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		carrier.Recycle(&fr)
		return 0, carrier.ErrClosed
	}
	seq := c.seq
	c.seq++
	c.sent++
	c.mu.Unlock()

	// Once Send is called the carrier owns the frame, success or failure:
	// every error path recycles a pooled payload, so senders never touch it
	// again (a retry re-pools a fresh copy).
	select {
	case <-c.abort:
		carrier.Recycle(&fr)
		return 0, fmt.Errorf("udpcar: %s->%s aborted: %w", c.src, c.dst, carrier.ErrClosed)
	default:
	}
	v := c.fabric.inj.OnSend(c.srcRef, c.dstRef, seq, fr.Ready, len(fr.Payload), fr.Last)
	if v.Err != nil {
		carrier.Recycle(&fr)
		return 0, fmt.Errorf("udpcar: %w", v.Err)
	}
	if v.CorruptByte >= 0 {
		fr.Payload[v.CorruptByte] ^= 0xff
	}

	env := c.fabric.env
	m := env.Cost
	s := len(fr.Payload)
	owner := carrier.QueryOf(fr.Source)

	// The datagram always leaves the back-end NIC.
	nicSvc := m.BeMsgCost + vtime.Duration(m.BeNICByte*float64(s))
	_, senderFree := c.srcNode.NIC.UseAs(owner, fr.Ready, nicSvc)

	if !fr.Last && (v.Drop || c.fabric.drop(c.id, seq)) {
		c.mu.Lock()
		c.dropped++
		c.mu.Unlock()
		c.mDrops.Inc()
		// The frame never reaches a receiver driver, so its pooled payload
		// must be recycled here.
		carrier.Recycle(&fr)
		return senderFree, nil
	}

	fwdSvc := vtime.Duration(m.IOByte * float64(s))
	if p := env.StreamsOnIO(c.ion.ID); p > 1 {
		fwdSvc += vtime.Duration(float64(m.IOSwitchCost) * float64(p-1) / float64(p))
	}
	if peers := env.DistinctBeNodes(); peers > 1 {
		fwdSvc += vtime.Duration(peers-1) * m.CiodPeerCost
	}
	_, t := c.ion.Forwarder.UseAs(owner, senderFree, fwdSvc)
	_, arrived := c.ion.Tree.UseAs(owner, t, vtime.Duration(m.TreeByte*float64(s)))
	if fr.TraceID != 0 {
		fr.Hops = append(fr.Hops,
			carrier.Hop{Name: "nic " + c.src.String(), At: senderFree},
			carrier.Hop{Name: fmt.Sprintf("iofwd io:%d", c.ion.ID), At: t},
			carrier.Hop{Name: fmt.Sprintf("tree io:%d", c.ion.ID), At: arrived},
		)
	}

	ready := fr.Ready
	select {
	case c.inbox <- carrier.Delivered{Frame: fr, At: arrived.Add(v.Delay), ViaTCP: true}:
	case <-c.abort:
		carrier.Recycle(&fr)
		return senderFree, fmt.Errorf("udpcar: %s->%s aborted: %w", c.src, c.dst, carrier.ErrClosed)
	}
	c.mFrames.Inc()
	c.mBytes.Add(int64(s))
	c.hDeliver.Observe(arrived.Add(v.Delay).Sub(ready))
	return senderFree, nil
}

// Abort unblocks a Send stalled on flow control and fails subsequent
// deliveries; the connection is torn without cooperation from the consumer.
func (c *Conn) Abort() {
	c.abortOnce.Do(func() { close(c.abort) })
}

// Close implements carrier.Conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Stats reports sent and dropped frame counts.
func (c *Conn) Stats() (sent, dropped int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.dropped
}

// drop decides deterministically whether frame seq of connection id is
// lost, by hashing into [0,1) and comparing with the loss rate.
func (f *Fabric) drop(id int64, seq uint64) bool {
	if f.lossRate <= 0 {
		return false
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
		buf[8+i] = byte(seq >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	u := float64(h.Sum64()>>11) / float64(1<<53)
	return u < f.lossRate
}
