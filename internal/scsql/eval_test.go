package scsql

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"scsq/internal/core"
	"scsq/internal/sqep"
)

func newTestEngine(t *testing.T, opts ...core.Option) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(opts...)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func execOne(t *testing.T, ev *Evaluator, src string) any {
	t.Helper()
	res, err := ev.Exec(src)
	if err != nil {
		t.Fatalf("exec: %v\nquery: %s", err, src)
	}
	if res.Stream == nil {
		t.Fatalf("statement produced no stream: %s", src)
	}
	v, err := res.Stream.One()
	if err != nil {
		t.Fatalf("drain: %v\nquery: %s", err, src)
	}
	return v
}

func TestFigure5QueryVerbatim(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	v := execOne(t, ev, Figure5Query(30_000, 7))
	if got, want := v, int64(7); got != want {
		t.Fatalf("count = %v, want %v", got, want)
	}
}

func TestMergeQueryVerbatim(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	v := execOne(t, ev, MergeQuery(1, 4, 30_000, 5))
	if got, want := v, int64(10); got != want {
		t.Fatalf("count = %v, want %v", got, want)
	}
}

func TestInboundQueriesVerbatim(t *testing.T) {
	const n, size, count = 3, 30_000, 4
	for q := 1; q <= 6; q++ {
		t.Run(fmt.Sprintf("query%d", q), func(t *testing.T) {
			e := newTestEngine(t)
			ev := NewEvaluator(e, nil)
			src, err := InboundQuery(q, n, size, count)
			if err != nil {
				t.Fatalf("corpus: %v", err)
			}
			v := execOne(t, ev, src)
			if got, want := v, int64(n*count); got != want {
				t.Fatalf("total count = %v, want %v", got, want)
			}
		})
	}
}

func TestGrepQueryVerbatim(t *testing.T) {
	names := []string{"f1.txt", "f2.txt", "f3.txt"}
	files := sqep.NewMapFileTable(names, map[string]string{
		"f1.txt": "alpha\nneedle one\nbeta",
		"f2.txt": "gamma\ndelta",
		"f3.txt": "needle two\nneedle three",
	})
	e := newTestEngine(t, core.WithFileTable(files))
	ev := NewEvaluator(e, nil)
	res, err := ev.Exec(GrepQuery("needle", len(names)))
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(els) != 3 {
		t.Fatalf("matched %d lines, want 3: %v", len(els), els)
	}
	for _, el := range els {
		line, ok := el.Value.(string)
		if !ok || !strings.Contains(line, "needle") {
			t.Errorf("unexpected match %v", el.Value)
		}
	}
}

func TestRadix2QueryFunction(t *testing.T) {
	// A known signal source: the radix2(s) result must equal the directly
	// computed FFT of each array.
	const arrayLen = 64
	signal := make([]float64, arrayLen)
	for i := range signal {
		signal[i] = math.Sin(2*math.Pi*float64(i)/8) + 0.25*math.Cos(2*math.Pi*float64(i)/4)
	}
	source := func(*sqep.Ctx) sqep.Operator {
		cp := append([]float64(nil), signal...)
		return sqep.NewSlice(any(cp))
	}
	e := newTestEngine(t, core.WithSource("antenna", source))
	ev := NewEvaluator(e, nil)

	if res, err := ev.Exec(Radix2Def); err != nil {
		t.Fatalf("create function: %v", err)
	} else if res.Defined != "radix2" {
		t.Fatalf("defined %q, want radix2", res.Defined)
	}

	v := execOne(t, ev, `select radix2('antenna');`)
	got, ok := v.([]float64)
	if !ok {
		t.Fatalf("result is %T, want []float64", v)
	}
	want := directFFT(t, signal)
	if len(got) != len(want) {
		t.Fatalf("result length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("fft[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestWindowAggregateQuery(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	res, err := ev.Exec(`
select winagg(extract(a), 'sum', 3, 3)
from sp a
where a=sp(iota(1,9), 'be');`)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []float64{6, 15, 24}
	if len(els) != len(want) {
		t.Fatalf("got %d windows, want %d", len(els), len(want))
	}
	for i, el := range els {
		if el.Value != any(want[i]) {
			t.Errorf("window %d = %v, want %v", i, el.Value, want[i])
		}
	}
}

func directFFT(t *testing.T, signal []float64) []float64 {
	t.Helper()
	n := len(signal)
	out := make([]float64, 2*n)
	for k := 0; k < n; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			re += signal[j] * math.Cos(angle)
			im += signal[j] * math.Sin(angle)
		}
		out[2*k] = re
		out[2*k+1] = im
	}
	return out
}
