// Package scsql implements the SCSQL query language (paper §2.4): a
// SQL-like language extended with streams and stream processes as
// first-class objects. The package provides a lexer, a recursive-descent
// parser producing an AST, a binder that orders the where-clause process
// bindings by dependency, and an evaluator that lowers queries onto the
// core engine's stream-process API.
//
// The supported grammar covers the paper's entire published query corpus:
//
//	statement  := query ';' | create ';'
//	create     := 'create' 'function' IDENT '(' [param {',' param}] ')'
//	              '->' type 'as' query
//	query      := 'select' expr 'from' decl {',' decl} ['where' conj {'and' conj}]
//	decl       := ['bag' 'of'] type IDENT
//	type       := 'sp' | 'integer' | 'string' | 'stream'
//	conj       := IDENT '=' expr | IDENT 'in' expr | expr CMP expr
//	expr       := add [CMP add]
//	CMP        := '<' | '<=' | '>' | '>=' | '<>' | '='
//	add        := mul {('+'|'-') mul}
//	mul        := unary {('*'|'/') unary}
//	unary      := ['-'] postfix
//	postfix    := primary {'.' IDENT}
//	primary    := NUMBER | STRING | IDENT | IDENT '(' [expr {',' expr}] ')'
//	            | '{' expr {',' expr} '}' | '(' expr ')' | query
//
// Keywords are case-insensitive; strings use single or double quotes.
package scsql

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	TokEOF Kind = iota + 1
	TokIdent
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokComma
	TokSemicolon
	TokEquals
	TokArrow
	TokLess
	TokLessEq
	TokGreater
	TokGreaterEq
	TokNotEq
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokDot

	// Keywords.
	TokSelect
	TokFrom
	TokWhere
	TokAnd
	TokIn
	TokCreate
	TokFunction
	TokAs
	TokBag
	TokOf
)

var kindNames = map[Kind]string{
	TokEOF:       "end of input",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokString:    "string",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokComma:     "','",
	TokSemicolon: "';'",
	TokEquals:    "'='",
	TokArrow:     "'->'",
	TokLess:      "'<'",
	TokLessEq:    "'<='",
	TokGreater:   "'>'",
	TokGreaterEq: "'>='",
	TokNotEq:     "'<>'",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokDot:       "'.'",
	TokSelect:    "'select'",
	TokFrom:      "'from'",
	TokWhere:     "'where'",
	TokAnd:       "'and'",
	TokIn:        "'in'",
	TokCreate:    "'create'",
	TokFunction:  "'function'",
	TokAs:        "'as'",
	TokBag:       "'bag'",
	TokOf:        "'of'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError reports a lexical or parse failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("scsql: %s: %s", e.Pos, e.Msg)
}

func errorfAt(pos Pos, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
