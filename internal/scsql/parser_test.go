package scsql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`select extract(b) from sp a where a = sp('x', 1); -- comment`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{
		TokSelect, TokIdent, TokLParen, TokIdent, TokRParen,
		TokFrom, TokIdent, TokIdent,
		TokWhere, TokIdent, TokEquals, TokIdent, TokLParen, TokString,
		TokComma, TokNumber, TokRParen, TokSemicolon, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestLexStringsAndArrow(t *testing.T) {
	toks, err := Lex(`"double" 'single' ->`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "double" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Kind != TokString || toks[1].Text != "single" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].Kind != TokArrow {
		t.Errorf("tok2 = %+v", toks[2])
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`'unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex(`select @`); err == nil {
		t.Error("stray character should fail")
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex(`SELECT Extract(B) FROM SP b`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokSelect {
		t.Errorf("SELECT not recognized: %+v", toks[0])
	}
	if toks[5].Kind != TokFrom {
		t.Errorf("FROM not recognized: %+v", toks[5])
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("select\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("pos = %v, want 2:3", toks[1].Pos)
	}
}

func TestParseQueryStructure(t *testing.T) {
	stmt, err := Parse(`
select extract(c) from
bag of sp a, sp b, sp c, integer n
where c=sp(extract(b), 'bg')
and   b=sp(count(merge(a)), 'bg')
and   a=spv((select gen_array(3000000,100) from integer i where i in iota(1,n)), 'be', 1)
and   n=4;`)
	if err != nil {
		t.Fatal(err)
	}
	q := stmt.Query
	if q == nil {
		t.Fatal("expected a query statement")
	}
	if len(q.From) != 4 {
		t.Fatalf("decls = %d, want 4", len(q.From))
	}
	if !q.From[0].Bag || q.From[0].Type != DeclSP || q.From[0].Name != "a" {
		t.Errorf("decl 0 = %+v, want bag of sp a", q.From[0])
	}
	if q.From[3].Type != DeclInteger {
		t.Errorf("decl 3 = %+v, want integer n", q.From[3])
	}
	if len(q.Where) != 4 {
		t.Fatalf("conds = %d, want 4", len(q.Where))
	}
	spv, ok := q.Where[2].Expr.(*Call)
	if !ok || spv.Name != "spv" || len(spv.Args) != 3 {
		t.Fatalf("binding a = %v, want spv(…,…,…)", q.Where[2].Expr)
	}
	if _, ok := spv.Args[0].(*SubqueryExpr); !ok {
		t.Errorf("spv arg 0 = %T, want subquery", spv.Args[0])
	}
}

func TestParseCreateFunction(t *testing.T) {
	stmt, err := Parse(Radix2Def)
	if err != nil {
		t.Fatal(err)
	}
	def := stmt.Def
	if def == nil {
		t.Fatal("expected a function definition")
	}
	if def.Name != "radix2" || def.Result != DeclStream {
		t.Errorf("def = %s -> %v", def.Name, def.Result)
	}
	if len(def.Params) != 1 || def.Params[0].Type != DeclString || def.Params[0].Name != "s" {
		t.Errorf("params = %+v", def.Params)
	}
	if def.Body == nil || len(def.Body.From) != 3 {
		t.Errorf("body = %+v", def.Body)
	}
}

func TestParseBareExpressionStatement(t *testing.T) {
	stmt, err := Parse(GrepQuery("x", 3))
	if err != nil {
		t.Fatal(err)
	}
	call, ok := stmt.Query.Select.(*Call)
	if !ok || call.Name != "merge" {
		t.Fatalf("select = %v, want merge(...)", stmt.Query.Select)
	}
}

func TestParseSetLiteral(t *testing.T) {
	stmt, err := Parse(`select radixcombine(merge({a,b})) from sp a, sp b where a=sp(iota(1,2)) and b=sp(iota(3,4));`)
	if err != nil {
		t.Fatal(err)
	}
	rc := stmt.Query.Select.(*Call)
	mg := rc.Args[0].(*Call)
	set, ok := mg.Args[0].(*SetLit)
	if !ok || len(set.Elems) != 2 {
		t.Fatalf("set = %v", mg.Args[0])
	}
}

func TestParseAllMultipleStatements(t *testing.T) {
	stmts, err := ParseAll(Radix2Def + "\nselect radix2('x');")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 || stmts[0].Def == nil || stmts[1].Query == nil {
		t.Fatalf("stmts = %+v", stmts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`select`,
		`select x from`,
		`select x from sp`,
		`select x from bag sp a`,
		`select x from floof a where a=1`,
		`select x from sp a where a`,
		`select x from sp a where a ~ 1`,
		`select f( from sp a`,
		`select {} from sp a`,
		`select (x from sp a`,
		`create function f(`,
		`create function f() -> stream`,
		`create function f() -> floof as select 1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorsArePositioned(t *testing.T) {
	_, err := Parse("select x\nfrom sp a where a ~ 1;")
	if err == nil {
		t.Fatal("expected error")
	}
	var syn *SyntaxError
	if !asSyntax(err, &syn) {
		t.Fatalf("error %T is not a SyntaxError", err)
	}
	if syn.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2 (%v)", syn.Pos.Line, err)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("message %q should carry the position", err)
	}
}

func asSyntax(err error, out **SyntaxError) bool {
	for err != nil {
		if se, ok := err.(*SyntaxError); ok {
			*out = se
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestASTStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent query.
	src := `select extract(c) from bag of sp a, sp c where c=sp(count(merge(a)), 'bg', 0) and a=spv((select gen_array(10,2) from integer i where i in iota(1,3)), 'be', urr('be'));`
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := stmt.Query.String()
	stmt2, err := Parse(printed + ";")
	if err != nil {
		t.Fatalf("re-parse of %q: %v", printed, err)
	}
	if stmt2.Query.String() != printed {
		t.Errorf("String not stable:\n first %s\nsecond %s", printed, stmt2.Query.String())
	}
}

func TestCorpusParses(t *testing.T) {
	sources := []string{
		Figure5Query(3_000_000, 100),
		MergeQuery(1, 2, 3_000_000, 100),
		MergeQuery(1, 4, 3_000_000, 100),
		GrepQuery("pattern", 1000),
		Radix2Def,
	}
	for q := 1; q <= 6; q++ {
		src, err := InboundQuery(q, 4, 3_000_000, 100)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, src)
	}
	for i, src := range sources {
		if _, err := Parse(src); err != nil {
			t.Errorf("corpus %d does not parse: %v\n%s", i, err, src)
		}
	}
	if _, err := InboundQuery(0, 1, 1, 1); err == nil {
		t.Error("InboundQuery(0) should fail")
	}
}

func TestDeclTypeAndKindStrings(t *testing.T) {
	if DeclSP.String() != "sp" || DeclInteger.String() != "integer" ||
		DeclString.String() != "string" || DeclStream.String() != "stream" ||
		DeclType(0).String() != "unknown" {
		t.Error("DeclType.String misbehaves")
	}
	if TokSelect.String() != "'select'" || Kind(999).String() == "" {
		t.Error("Kind.String misbehaves")
	}
}
