package scsql_test

// External test package: these tests exercise the SCSQL surface of the
// multi-tenant scheduler (ps(), cancel(), monitor('@qid')), and the sched
// package itself imports scsql — an internal test would cycle.

import (
	"errors"
	"strings"
	"testing"

	"scsq/internal/catalog"
	"scsq/internal/core"
	"scsq/internal/sched"
	"scsq/internal/scsql"
	"scsq/internal/sqep"
)

func newSchedEngine(t *testing.T) (*core.Engine, *sched.Scheduler, *scsql.Evaluator) {
	t.Helper()
	e, err := core.NewEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	s := sched.New(e, nil)
	t.Cleanup(func() { s.Close() })
	// The interactive evaluator shares the engine (and thereby the attached
	// scheduler) and the catalog with the scheduler's own evaluator.
	return e, s, scsql.NewEvaluator(e, s.Catalog())
}

func drainRows(t *testing.T, ev *scsql.Evaluator, src string) []sqep.Element {
	t.Helper()
	res, err := ev.Exec(src)
	if err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
	if res.Stream == nil {
		t.Fatalf("no stream from %q", src)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatalf("drain %q: %v", src, err)
	}
	return els
}

func TestPSListsSessions(t *testing.T) {
	_, s, ev := newSchedEngine(t)

	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}

	rows := drainRows(t, ev, `select ps();`)
	found := false
	for _, el := range rows {
		tup, ok := el.Value.(catalog.Tuple)
		if !ok {
			t.Fatalf("ps row = %#v, want a catalog.Tuple", el.Value)
		}
		if got, want := tup.Schema.Names(), sched.SysSessionsSchema.Names(); len(got) != len(want) {
			t.Fatalf("ps schema = %v, want %v", got, want)
		}
		field := func(name string) any {
			v, ok := tup.Field(name)
			if !ok {
				t.Fatalf("ps row %s has no field %q", tup, name)
			}
			return v
		}
		if field("id") == q.ID() {
			found = true
			if got := field("state"); got != "done" {
				t.Fatalf("ps state for %s = %v, want done", q.ID(), got)
			}
			if got := field("nodes"); got != int64(0) {
				t.Fatalf("ps nodes for finished %s = %v, want 0", q.ID(), got)
			}
			// No TTL and no admission retries: the resilience columns are
			// present but zero.
			if d, r := field("deadline_ns"), field("retries"); d != int64(0) || r != int64(0) {
				t.Fatalf("ps resilience columns for %s = deadline %v retries %v, want 0, 0", q.ID(), d, r)
			}
		}
	}
	if !found {
		t.Fatalf("ps() rows %v do not mention session %s", rows, q.ID())
	}
}

// TestMonitorSchedPrefixLike pins the SQL-LIKE spelling of the scheduler
// counter view: monitor('sched.%') strips the trailing '%' and matches the
// "sched." prefix, including the resilience counters (expired/shed/retried
// are bound eagerly, so they report zero rather than being absent).
func TestMonitorSchedPrefixLike(t *testing.T) {
	_, s, ev := newSchedEngine(t)

	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}

	rows := drainRows(t, ev, `select monitor('sched.%');`)
	got := map[string]int64{}
	for _, el := range rows {
		bag, ok := el.Value.([]any)
		if !ok || len(bag) < 3 {
			t.Fatalf("monitor row = %#v", el.Value)
		}
		name, _ := bag[1].(string)
		if !strings.HasPrefix(name, "sched.") {
			t.Fatalf("monitor('sched.%%') leaked row %q", name)
		}
		if v, ok := bag[2].(int64); ok {
			got[name] = v
		}
	}
	if got["sched.submitted"] != 1 || got["sched.completed"] != 1 {
		t.Fatalf("sched counters = %v, want submitted=1 completed=1", got)
	}
	for _, name := range []string{"sched.expired", "sched.shed", "sched.retried"} {
		if v, ok := got[name]; !ok || v != 0 {
			t.Fatalf("resilience counter %s = %d (present=%v), want 0 present", name, v, ok)
		}
	}
}

func TestCancelBuiltinCancelsSession(t *testing.T) {
	_, s, ev := newSchedEngine(t)

	q, err := s.Submit(scsql.Figure5Query(30_000, 500))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	rows := drainRows(t, ev, `select cancel('`+q.ID()+`');`)
	if len(rows) != 1 {
		t.Fatalf("cancel() yielded %d rows, want 1", len(rows))
	}
	if _, err := q.Wait(); !errors.Is(err, sched.ErrCancelled) {
		t.Fatalf("session err = %v, want ErrCancelled", err)
	}

	// Cancelling a finished session surfaces the scheduler's typed error.
	res, err := ev.Exec(`select cancel('` + q.ID() + `');`)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if _, err := res.Stream.Drain(); !errors.Is(err, sched.ErrQueryFinished) {
		t.Fatalf("re-cancel err = %v, want ErrQueryFinished", err)
	}
}

func TestPSWithoutSchedulerErrors(t *testing.T) {
	e, err := core.NewEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer e.Close()
	ev := scsql.NewEvaluator(e, nil)
	res, err := ev.Exec(`select ps();`)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if _, err := res.Stream.Drain(); err == nil || !strings.Contains(err.Error(), "no query scheduler") {
		t.Fatalf("err = %v, want no-scheduler error", err)
	}
}

func TestMonitorQueryScoped(t *testing.T) {
	_, s, ev := newSchedEngine(t)

	a, err := s.Submit(scsql.Figure5Query(30_000, 3))
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := s.Submit(scsql.Figure5Query(30_000, 3))
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	if _, err := a.Wait(); err != nil {
		t.Fatalf("a: %v", err)
	}
	if _, err := b.Wait(); err != nil {
		t.Fatalf("b: %v", err)
	}

	rows := drainRows(t, ev, `select monitor('@`+a.ID()+`');`)
	if len(rows) == 0 {
		t.Fatalf("monitor('@%s') yielded no rows", a.ID())
	}
	for _, el := range rows {
		bag := el.Value.([]any)
		name := bag[1].(string)
		if strings.Contains(name, b.ID()+"/") || strings.HasSuffix(name, "."+b.ID()) {
			t.Fatalf("scoped monitor leaked %s's metric %q", b.ID(), name)
		}
		if !strings.Contains(name, a.ID()+"/") && !strings.HasSuffix(name, "."+a.ID()) {
			t.Fatalf("metric %q in monitor('@%s') is not scoped to it", name, a.ID())
		}
	}
}
