package scsql_test

// Schema drift guard for the system catalog. The golden map below is the
// published contract for every sys_* table: if a column is added, removed,
// renamed or retyped, this test fails twice — once against the live
// registry and once against DESIGN.md §13 — forcing the doc to move in the
// same commit as the code.

import (
	"os"
	"strings"
	"testing"
)

var goldenSysSchemas = map[string]string{
	"sys_sessions": "(id string, state string, priority int, nodes int, statement string, deadline_ns int, age_ns int, retries int)",
	"sys_nodes":    "(cluster string, node int, x int, y int, z int, pset int, io_node int, alive int, rps int, owners string)",
	"sys_links":    "(carrier string, query string, producer string, consumer string, from_cluster string, from_node int, to_cluster string, to_node int, frames int, bytes int, drops int)",
	"sys_rps":      "(id string, query string, cluster string, node int, elements_out int, bytes_out int, frames_out int, last_out_ns int, recv_frames int, recv_bytes int, inbox_depth_hw int)",
	"sys_metrics":  "(kind string, name string, value int, count int, sum_ns int, min_ns int, max_ns int)",
}

func TestSysSchemasMatchGolden(t *testing.T) {
	e, _, _ := newSchedEngine(t)
	reg := e.SystemCatalog()
	tabs := reg.Tables()
	if len(tabs) != len(goldenSysSchemas) {
		names := make([]string, len(tabs))
		for i, tab := range tabs {
			names[i] = tab.Name
		}
		t.Fatalf("registry has %d tables %v, golden has %d — update goldenSysSchemas and DESIGN.md §13 together",
			len(tabs), names, len(goldenSysSchemas))
	}
	for _, tab := range tabs {
		want, ok := goldenSysSchemas[tab.Name]
		if !ok {
			t.Errorf("table %s is not in the golden map — add it here and to DESIGN.md §13", tab.Name)
			continue
		}
		if got := tab.Schema.String(); got != want {
			t.Errorf("%s schema drifted:\n  live:   %s\n  golden: %s\nupdate goldenSysSchemas and DESIGN.md §13 together", tab.Name, got, want)
		}
		if tab.Doc == "" {
			t.Errorf("table %s has no doc string", tab.Name)
		}
	}
}

func TestSysSchemasDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	text := string(doc)
	if !strings.Contains(text, "System catalog") {
		t.Fatal("DESIGN.md has no System catalog section")
	}
	for name, schema := range goldenSysSchemas {
		if !strings.Contains(text, name+" "+schema) {
			t.Errorf("DESIGN.md §13 does not spell the current %s schema:\n  want the literal line: %s %s", name, name, schema)
		}
	}
}
