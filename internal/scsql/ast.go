package scsql

import (
	"fmt"
	"strings"
)

// DeclType is the declared type of a from-clause variable.
type DeclType int

// Declarable variable types.
const (
	DeclSP DeclType = iota + 1
	DeclInteger
	DeclString
	DeclStream
)

func (t DeclType) String() string {
	switch t {
	case DeclSP:
		return "sp"
	case DeclInteger:
		return "integer"
	case DeclString:
		return "string"
	case DeclStream:
		return "stream"
	default:
		return "unknown"
	}
}

// Decl declares a query variable, e.g. "sp a", "bag of sp b", "integer n".
type Decl struct {
	Name string
	Type DeclType
	Bag  bool
	Pos  Pos
}

// Cond is one where-clause conjunct. Three forms exist:
//
//   - Name = Expr   — a binding (Pred nil, In false)
//   - Name in Expr  — an iteration binding (Pred nil, In true)
//   - Pred          — a predicate over bound variables (Name empty),
//     e.g. "i > 5"; predicates filter iteration domains and stream
//     comprehensions.
type Cond struct {
	Name string
	In   bool // true for 'in', false for '='
	Expr Expr
	Pred Expr
	Pos  Pos
}

// Query is a select-from-where block.
type Query struct {
	Select Expr
	From   []Decl
	Where  []Cond
	Pos    Pos
}

// FuncDef is a 'create function ... -> stream as select ...' statement.
type FuncDef struct {
	Name   string
	Params []Decl
	Result DeclType
	Body   *Query
	Pos    Pos
}

// Statement is either a query or a function definition (exactly one field
// is set).
type Statement struct {
	Query *Query
	Def   *FuncDef
}

// Expr is an expression node.
type Expr interface {
	fmt.Stringer
	ePos() Pos
}

// NumberLit is an integer or decimal literal.
type NumberLit struct {
	Text string
	Pos  Pos
}

// StringLit is a quoted string literal.
type StringLit struct {
	Value string
	Pos   Pos
}

// Ident references a variable.
type Ident struct {
	Name string
	Pos  Pos
}

// Call applies a (builtin or user-defined) function.
type Call struct {
	Name string
	Args []Expr
	Pos  Pos
}

// SetLit is a process-set literal such as {a, b}.
type SetLit struct {
	Elems []Expr
	Pos   Pos
}

// SubqueryExpr embeds a select-from-where block in expression position (the
// first argument of spv()).
type SubqueryExpr struct {
	Query *Query
	Pos   Pos
}

// BinaryExpr is an arithmetic or comparison operation.
type BinaryExpr struct {
	Op   string // one of + - * / < <= > >= <> =
	L, R Expr
	Pos  Pos
}

// FieldExpr is a postfix field access such as n.cluster — reading one named
// column of a system-catalog tuple flowing through a comprehension.
type FieldExpr struct {
	X    Expr
	Name string
	Pos  Pos
}

// UnaryExpr is a unary negation.
type UnaryExpr struct {
	Op  string // "-"
	X   Expr
	Pos Pos
}

func (e *NumberLit) ePos() Pos    { return e.Pos }
func (e *StringLit) ePos() Pos    { return e.Pos }
func (e *Ident) ePos() Pos        { return e.Pos }
func (e *Call) ePos() Pos         { return e.Pos }
func (e *SetLit) ePos() Pos       { return e.Pos }
func (e *SubqueryExpr) ePos() Pos { return e.Pos }
func (e *BinaryExpr) ePos() Pos   { return e.Pos }
func (e *UnaryExpr) ePos() Pos    { return e.Pos }
func (e *FieldExpr) ePos() Pos    { return e.Pos }

func (e *BinaryExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *UnaryExpr) String() string { return e.Op + e.X.String() }

func (e *FieldExpr) String() string { return e.X.String() + "." + e.Name }

func (e *NumberLit) String() string { return e.Text }
func (e *StringLit) String() string { return "'" + e.Value + "'" }
func (e *Ident) String() string     { return e.Name }

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *SetLit) String() string {
	elems := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		elems[i] = el.String()
	}
	return "{" + strings.Join(elems, ", ") + "}"
}

func (e *SubqueryExpr) String() string { return "(" + e.Query.String() + ")" }

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	sb.WriteString(q.Select.String())
	sb.WriteString(" from ")
	for i, d := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		if d.Bag {
			sb.WriteString("bag of ")
		}
		sb.WriteString(d.Type.String())
		sb.WriteByte(' ')
		sb.WriteString(d.Name)
	}
	for i, c := range q.Where {
		if i == 0 {
			sb.WriteString(" where ")
		} else {
			sb.WriteString(" and ")
		}
		if c.Pred != nil {
			sb.WriteString(c.Pred.String())
			continue
		}
		sb.WriteString(c.Name)
		if c.In {
			sb.WriteString(" in ")
		} else {
			sb.WriteString(" = ")
		}
		sb.WriteString(c.Expr.String())
	}
	return sb.String()
}
