package scsql

import (
	"fmt"
	"sort"
	"strings"

	"scsq/internal/catalog"
	"scsq/internal/core"
	"scsq/internal/sqep"
	"scsq/internal/vtime"
)

// sqepOperator aliases the operator interface to keep evaluator signatures
// readable.
type sqepOperator = sqep.Operator

// compileStream lowers a stream expression to a SQEP operator in the
// context of the stream process being built (b). This is where extract()
// and merge() wire carrier connections from producer SPs to this process.
func (ev *Evaluator) compileStream(e Expr, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	switch x := e.(type) {
	case *Ident:
		v, ok := env.lookup(x.Name)
		if !ok {
			return nil, errorfAt(x.Pos, "unbound variable %q", x.Name)
		}
		switch val := v.(type) {
		case *core.SP:
			return b.Extract(val)
		case []*core.SP:
			return b.Merge(val)
		default:
			return nil, errorfAt(x.Pos, "variable %q (%T) is not a stream", x.Name, v)
		}
	case *SubqueryExpr:
		return ev.compileQueryBody(x.Query, env, b)
	case *Call:
		return ev.compileCall(x, env, b)
	default:
		return nil, errorfAt(e.ePos(), "expected a stream expression, got %s", e)
	}
}

// compileQueryBody compiles a whole select-from-where block in stream
// context: '=' bindings are evaluated (creating stream processes), and an
// 'in' driver turns the query into a stream comprehension — the domain
// stream is filtered by the predicate conjuncts and mapped through the
// select expression, with the iteration variable bound per element. This
// generalizes the paper's "from integer i where i in iota(1,n)" pattern to
// arbitrary streams.
func (ev *Evaluator) compileQueryBody(q *Query, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	local := newScope(env)
	if err := ev.evalBindings(q, local); err != nil {
		return nil, err
	}
	_, driver, preds, err := splitConds(q)
	if err != nil {
		return nil, err
	}
	if driver == nil {
		if len(preds) > 0 {
			return nil, errorfAt(preds[0].Pos, "predicates require an 'in' iteration to filter")
		}
		return ev.compileStream(q.Select, local, b)
	}

	op, err := ev.compileStream(driver.Expr, local, b)
	if err != nil {
		return nil, err
	}
	name := driver.Name
	for _, p := range preds {
		pred := p.Pred
		op = sqep.NewFilter(pred.String(), op, func(v any) (bool, error) {
			elem := newScope(local)
			elem.bind(name, v)
			res, err := ev.evalScalar(pred, elem)
			if err != nil {
				return false, err
			}
			keep, ok := res.(bool)
			if !ok {
				return false, fmt.Errorf("predicate %s is not boolean (got %T)", pred, res)
			}
			return keep, nil
		})
	}
	if id, ok := q.Select.(*Ident); ok && id.Name == name {
		return op, nil // identity comprehension
	}
	sel := q.Select
	return sqep.NewMapFn(sel.String(), op, func(v any) (any, vtime.Duration, error) {
		elem := newScope(local)
		elem.bind(name, v)
		out, err := ev.evalScalar(sel, elem)
		if err != nil {
			return nil, 0, err
		}
		return out, mapElemCost, nil
	}), nil
}

// mapElemCost is the CPU charge for evaluating a comprehension's select
// expression on one element.
const mapElemCost = 100 * vtime.Nanosecond

func (ev *Evaluator) compileCall(call *Call, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	wrap1 := func(mk func(sqep.Operator) sqep.Operator) (sqep.Operator, error) {
		if len(call.Args) != 1 {
			return nil, errorfAt(call.Pos, "%s() takes 1 argument, got %d", call.Name, len(call.Args))
		}
		in, err := ev.compileStream(call.Args[0], env, b)
		if err != nil {
			return nil, err
		}
		return mk(in), nil
	}

	switch call.Name {
	case "extract":
		if len(call.Args) != 1 {
			return nil, errorfAt(call.Pos, "extract() takes 1 argument, got %d", len(call.Args))
		}
		sp, err := ev.evalSP(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		return b.Extract(sp)

	case "merge":
		if len(call.Args) != 1 {
			return nil, errorfAt(call.Pos, "merge() takes 1 argument, got %d", len(call.Args))
		}
		sps, err := ev.evalSPBag(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		return b.Merge(sps)

	case "count":
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewCount(in) })
	case "sum":
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewSum(in) })
	case "streamof":
		// streamof over a system catalog table is a live-delta stream paced
		// on the virtual-time beat frontier; over anything else it is the
		// ordinary stream-lift operator.
		if len(call.Args) == 1 {
			if inner, ok := call.Args[0].(*Call); ok {
				if t, ok := ev.sysTableFor(inner); ok {
					return ev.compileStreamOfSys(t, inner, env)
				}
			}
		}
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewStreamOf(in) })
	case "fft":
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewFFT(in) })
	case "odd":
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewOdd(in) })
	case "even":
		return wrap1(func(in sqep.Operator) sqep.Operator { return sqep.NewEven(in) })

	case "gen_array":
		if len(call.Args) != 2 {
			return nil, errorfAt(call.Pos, "gen_array() takes 2 arguments, got %d", len(call.Args))
		}
		size, err := ev.evalInt(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		count, err := ev.evalInt(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		return sqep.NewGenArray(int(size), int(count)), nil

	case "iota":
		if len(call.Args) != 2 {
			return nil, errorfAt(call.Pos, "iota() takes 2 arguments, got %d", len(call.Args))
		}
		from, err := ev.evalInt(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		to, err := ev.evalInt(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		return sqep.NewIota(from, to), nil

	case "grep":
		if len(call.Args) != 2 {
			return nil, errorfAt(call.Pos, "grep() takes 2 arguments, got %d", len(call.Args))
		}
		pattern, err := ev.evalScalar(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		file, err := ev.evalScalar(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		pat, ok1 := pattern.(string)
		fn, ok2 := file.(string)
		if !ok1 || !ok2 {
			return nil, errorfAt(call.Pos, "grep() takes string arguments")
		}
		return sqep.NewGrep(pat, fn), nil

	case "receiver":
		if len(call.Args) != 1 {
			return nil, errorfAt(call.Pos, "receiver() takes 1 argument, got %d", len(call.Args))
		}
		name, err := ev.evalScalar(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		s, ok := name.(string)
		if !ok {
			return nil, errorfAt(call.Pos, "receiver() takes a string argument")
		}
		return sqep.NewSource(s), nil

	case "limit":
		if len(call.Args) != 2 {
			return nil, errorfAt(call.Pos, "limit() takes 2 arguments, got %d", len(call.Args))
		}
		in, err := ev.compileStream(call.Args[0], env, b)
		if err != nil {
			return nil, err
		}
		n, err := ev.evalInt(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		return sqep.NewLimit(in, n), nil

	case "monitor":
		return ev.compileMonitor(call, env)

	case "ps":
		return ev.compilePS(call)

	case "cancel":
		return ev.compileCancel(call, env)

	case "radixcombine":
		return ev.compileRadixCombine(call, env, b)

	case "winagg":
		return ev.compileWinAgg(call, env, b)

	default:
		// System catalog tables resolve before user functions: sys_* names
		// are reserved for the engine's own introspection relations.
		if t, ok := ev.sysTableFor(call); ok {
			return ev.compileSysTable(t, call, env)
		}
		if def, ok := ev.cat.Lookup(call.Name); ok {
			return ev.compileUserFunc(def, call, env, b)
		}
		return nil, errorfAt(call.Pos, "unknown function %q", call.Name)
	}
}

// compileMonitor lowers monitor([prefix]) — the engine's telemetry registry
// exposed as a queryable stream. Each element is a bag describing one
// metric: {"counter", name, value}, {"gauge", name, value}, or
// {"histogram", name, count, sum_ns, min_ns, max_ns}. Rows sort by kind
// then name, so output order is deterministic. The snapshot is captured
// when the plan opens (not at compile time), and the registry accumulates
// across engine resets, so a monitor() statement issued after a query
// reports that query's final counters. The optional string argument is a
// SQL-LIKE pattern over the metric name — '%' matches anywhere
// (monitor('%bytes%')), and a pattern without '%' keeps its historic
// prefix meaning, so monitor('sched.%') and monitor('sched.') are the
// same view. The matcher is catalog.Like, shared with sys_metrics(). The
// form monitor('@q3') instead keeps the metrics scoped to query q3 (names
// carrying a "q3/" path segment or a ".q3" suffix) — the per-session view
// of a multi-tenant engine.
func (ev *Evaluator) compileMonitor(call *Call, env *scope) (sqep.Operator, error) {
	prefix := ""
	switch len(call.Args) {
	case 0:
	case 1:
		v, err := ev.evalScalar(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		s, ok := v.(string)
		if !ok {
			return nil, errorfAt(call.Args[0].ePos(), "monitor() prefix must be a string, got %T", v)
		}
		prefix = s
	default:
		return nil, errorfAt(call.Pos, "monitor() takes at most 1 argument, got %d", len(call.Args))
	}
	qid := ""
	if strings.HasPrefix(prefix, "@") {
		qid = prefix[1:]
		prefix = ""
	}
	match := catalog.Like(prefix)
	eng := ev.eng
	return sqep.NewThunk("monitor", func() ([]any, error) {
		snap := eng.MetricsSnapshot()
		if qid != "" {
			snap = snap.ForQuery(qid)
		}
		var rows []any
		for _, name := range sortedMetricNames(snap.Counters) {
			if match(name) {
				rows = append(rows, []any{"counter", name, snap.Counters[name]})
			}
		}
		for _, name := range sortedMetricNames(snap.Gauges) {
			if match(name) {
				rows = append(rows, []any{"gauge", name, snap.Gauges[name]})
			}
		}
		for _, name := range sortedMetricNames(snap.Histograms) {
			if match(name) {
				h := snap.Histograms[name]
				rows = append(rows, []any{"histogram", name, h.Count, h.SumNs, h.MinNs, h.MaxNs})
			}
		}
		return rows, nil
	}), nil
}

// compilePS lowers ps() — a thin view of the sys_sessions catalog table
// the attached scheduler registers. Each element is a catalog.Tuple {id,
// state, priority, nodes, statement, deadline_ns, age_ns, retries} in
// submission order; the three resilience columns are virtual-time
// quantities (absolute deadline, time in current state,
// transient-admission retries) and stay zero when the features are off.
// Requires an engine with a query scheduler attached (scsq.New installs
// one; a bare evaluator has none — its catalog has no sys_sessions).
func (ev *Evaluator) compilePS(call *Call) (sqep.Operator, error) {
	if len(call.Args) != 0 {
		return nil, errorfAt(call.Pos, "ps() takes no arguments, got %d", len(call.Args))
	}
	eng := ev.eng
	return sqep.NewThunk("ps", func() ([]any, error) {
		t, ok := eng.SystemCatalog().Lookup("sys_sessions")
		if !ok || eng.Scheduler() == nil {
			return nil, fmt.Errorf("scsql: ps(): no query scheduler attached to this engine")
		}
		rows, err := t.Snap("")
		if err != nil {
			return nil, err
		}
		out := make([]any, len(rows))
		for i, r := range rows {
			out[i] = r
		}
		return out, nil
	}), nil
}

// compileCancel lowers cancel('q3') — cancelling the identified session of
// the attached scheduler. It yields a single confirmation bag {id,
// "cancelled"}; an unknown or finished session is an error.
func (ev *Evaluator) compileCancel(call *Call, env *scope) (sqep.Operator, error) {
	if len(call.Args) != 1 {
		return nil, errorfAt(call.Pos, "cancel() takes 1 argument, got %d", len(call.Args))
	}
	v, err := ev.evalScalar(call.Args[0], env)
	if err != nil {
		return nil, err
	}
	qid, ok := v.(string)
	if !ok {
		return nil, errorfAt(call.Args[0].ePos(), "cancel() takes a query id string, got %T", v)
	}
	eng := ev.eng
	return sqep.NewThunk("cancel", func() ([]any, error) {
		sch := eng.Scheduler()
		if sch == nil {
			return nil, fmt.Errorf("scsql: cancel(): no query scheduler attached to this engine")
		}
		if err := sch.CancelQuery(qid); err != nil {
			return nil, err
		}
		return []any{[]any{qid, "cancelled"}}, nil
	}), nil
}

func sortedMetricNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// compileRadixCombine lowers radixcombine(merge({odd, even})): the merged
// partial-FFT streams are demultiplexed by producer and recombined. The
// first process of the set carries the odd-sample FFTs, the second the
// even-sample FFTs (matching the paper's radix2 definition, where
// a=sp(fft(odd(...))) is listed first).
func (ev *Evaluator) compileRadixCombine(call *Call, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	if len(call.Args) != 1 {
		return nil, errorfAt(call.Pos, "radixcombine() takes 1 argument, got %d", len(call.Args))
	}
	mergeCall, ok := call.Args[0].(*Call)
	if !ok || mergeCall.Name != "merge" || len(mergeCall.Args) != 1 {
		return nil, errorfAt(call.Pos, "radixcombine() requires merge({odd, even}) as its argument")
	}
	sps, err := ev.evalSPBag(mergeCall.Args[0], env)
	if err != nil {
		return nil, err
	}
	if len(sps) != 2 {
		return nil, errorfAt(call.Pos, "radixcombine() requires exactly two merged processes, got %d", len(sps))
	}
	merged, err := b.Merge(sps)
	if err != nil {
		return nil, err
	}
	return sqep.NewRadixCombine(merged, sps[0].ID(), sps[1].ID()), nil
}

// compileWinAgg lowers winagg(stream, kind, size, slide) — the window
// aggregation operator.
func (ev *Evaluator) compileWinAgg(call *Call, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	if len(call.Args) != 4 {
		return nil, errorfAt(call.Pos, "winagg() takes 4 arguments (stream, kind, size, slide), got %d", len(call.Args))
	}
	in, err := ev.compileStream(call.Args[0], env, b)
	if err != nil {
		return nil, err
	}
	kindV, err := ev.evalScalar(call.Args[1], env)
	if err != nil {
		return nil, err
	}
	kindS, ok := kindV.(string)
	if !ok {
		return nil, errorfAt(call.Args[1].ePos(), "winagg() kind must be a string")
	}
	var kind sqep.WindowKind
	switch strings.ToLower(kindS) {
	case "count":
		kind = sqep.WindowCount
	case "sum":
		kind = sqep.WindowSum
	case "avg":
		kind = sqep.WindowAvg
	case "min":
		kind = sqep.WindowMin
	case "max":
		kind = sqep.WindowMax
	default:
		return nil, errorfAt(call.Args[1].ePos(), "unknown window aggregate %q", kindS)
	}
	size, err := ev.evalInt(call.Args[2], env)
	if err != nil {
		return nil, err
	}
	slide, err := ev.evalInt(call.Args[3], env)
	if err != nil {
		return nil, err
	}
	return sqep.NewWindow(in, kind, int(size), int(slide)), nil
}

// compileUserFunc instantiates a create-function body at the call site: the
// body's where-clause bindings run (creating its stream processes) with the
// parameters bound to the call arguments, and the body's select expression
// compiles into the calling process's plan.
func (ev *Evaluator) compileUserFunc(def *FuncDef, call *Call, env *scope, b *core.PlanBuilder) (sqep.Operator, error) {
	if len(call.Args) != len(def.Params) {
		return nil, errorfAt(call.Pos, "%s() takes %d arguments, got %d", def.Name, len(def.Params), len(call.Args))
	}
	fnScope := newScope(nil) // function bodies see only their parameters
	for i, p := range def.Params {
		v, err := ev.evalBindingExpr(call.Args[i], env)
		if err != nil {
			return nil, err
		}
		if err := checkDeclType(p, v); err != nil {
			return nil, errorfAt(call.Args[i].ePos(), "%s(): %v", def.Name, err)
		}
		fnScope.bind(p.Name, v)
	}
	return ev.compileQueryBody(def.Body, fnScope, b)
}
