package scsql

import (
	"strings"
)

// Parse parses one SCSQL statement (query or function definition),
// terminated by ';' or end of input.
func Parse(src string) (*Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errorfAt(Pos{1, 1}, "expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a ';'-separated sequence of statements.
func ParseAll(src string) ([]*Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []*Statement
	for p.peek().Kind != TokEOF {
		stmt, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if p.peek().Kind == TokSemicolon {
			p.next()
		}
	}
	if len(stmts) == 0 {
		return nil, errorfAt(p.peek().Pos, "empty input")
	}
	return stmts, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errorfAt(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	return p.next(), nil
}

func (p *parser) statement() (*Statement, error) {
	switch p.peek().Kind {
	case TokCreate:
		def, err := p.funcDef()
		if err != nil {
			return nil, err
		}
		return &Statement{Def: def}, nil
	case TokSelect:
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &Statement{Query: q}, nil
	default:
		// A bare expression statement, e.g. the paper's 1000-way grep:
		// merge(spv(select grep(...) from integer i where i in iota(1,1000)));
		t := p.peek()
		e, err := p.expr()
		if err != nil {
			return nil, errorfAt(t.Pos, "expected 'select', 'create' or an expression, found %s %q", t.Kind, t.Text)
		}
		return &Statement{Query: &Query{Select: e, Pos: t.Pos}}, nil
	}
}

// funcDef := 'create' 'function' IDENT '(' [param {',' param}] ')' '->' type 'as' query
func (p *parser) funcDef() (*FuncDef, error) {
	start, _ := p.expect(TokCreate)
	if _, err := p.expect(TokFunction); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []Decl
	for p.peek().Kind != TokRParen {
		if len(params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		params = append(params, d)
	}
	p.next() // ')'
	if _, err := p.expect(TokArrow); err != nil {
		return nil, err
	}
	resTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	resType, err := declTypeOf(resTok)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAs); err != nil {
		return nil, err
	}
	body, err := p.query()
	if err != nil {
		return nil, err
	}
	return &FuncDef{
		Name:   strings.ToLower(name.Text),
		Params: params,
		Result: resType,
		Body:   body,
		Pos:    start.Pos,
	}, nil
}

// query := 'select' expr 'from' decl {',' decl} ['where' cond {'and' cond}]
func (p *parser) query() (*Query, error) {
	start, err := p.expect(TokSelect)
	if err != nil {
		return nil, err
	}
	sel, err := p.expr()
	if err != nil {
		return nil, err
	}
	q := &Query{Select: sel, Pos: start.Pos}
	if p.peek().Kind == TokFrom {
		p.next()
		for {
			d, err := p.decl()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, d)
			if p.peek().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if p.peek().Kind == TokWhere {
		p.next()
		for {
			c, err := p.cond()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if p.peek().Kind != TokAnd {
				break
			}
			p.next()
		}
	}
	return q, nil
}

// decl := ['bag' 'of'] type IDENT
func (p *parser) decl() (Decl, error) {
	var d Decl
	t := p.peek()
	d.Pos = t.Pos
	if t.Kind == TokBag {
		p.next()
		if _, err := p.expect(TokOf); err != nil {
			return d, err
		}
		d.Bag = true
	}
	typTok, err := p.expect(TokIdent)
	if err != nil {
		return d, err
	}
	d.Type, err = declTypeOf(typTok)
	if err != nil {
		return d, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return d, err
	}
	d.Name = nameTok.Text
	return d, nil
}

func declTypeOf(t Token) (DeclType, error) {
	switch strings.ToLower(t.Text) {
	case "sp":
		return DeclSP, nil
	case "integer":
		return DeclInteger, nil
	case "string", "charstring":
		return DeclString, nil
	case "stream":
		return DeclStream, nil
	default:
		return 0, errorfAt(t.Pos, "unknown type %q", t.Text)
	}
}

// cond := IDENT '=' expr | IDENT 'in' expr | predicate-expr
//
// A conjunct of the form "bare-identifier = expr" is a binding, and
// "bare-identifier in expr" an iteration binding; any other comparison is a
// predicate over bound variables (used to filter iteration domains and
// stream comprehensions). Since '=' also parses as a comparison operator
// inside expr (n.x = 0 is an equality predicate), the binding form is
// recovered structurally: an '=' whose left side is a bare identifier is a
// binding — exactly the historic grammar.
func (p *parser) cond() (Cond, error) {
	var c Cond
	start := p.peek()
	c.Pos = start.Pos
	lhs, err := p.expr()
	if err != nil {
		return c, err
	}
	if id, ok := lhs.(*Ident); ok && p.peek().Kind == TokIn {
		p.next()
		c.Name = id.Name
		c.In = true
		c.Expr, err = p.expr()
		return c, err
	}
	if bin, ok := lhs.(*BinaryExpr); ok && bin.Op == "=" {
		if id, ok := bin.L.(*Ident); ok {
			c.Name = id.Name
			c.Expr = bin.R
			return c, nil
		}
	}
	if bin, ok := lhs.(*BinaryExpr); !ok || !isComparison(bin.Op) {
		return c, errorfAt(start.Pos, "where-clause conjunct must be a binding (x = ..., x in ...) or a comparison, found %s", lhs)
	}
	c.Pred = lhs
	return c, nil
}

func isComparison(op string) bool {
	switch op {
	case "<", "<=", ">", ">=", "<>", "=":
		return true
	}
	return false
}

// expr parses a full expression with the precedence comparison < additive
// < multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.peek().Kind {
	case TokLess:
		op = "<"
	case TokLessEq:
		op = "<="
	case TokGreater:
		op = ">"
	case TokGreaterEq:
		op = ">="
	case TokNotEq:
		op = "<>"
	case TokEquals:
		op = "="
	default:
		return l, nil
	}
	tok := p.next()
	r, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r, Pos: tok.Pos}, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case TokPlus:
			op = "+"
		case TokMinus:
			op = "-"
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Pos: tok.Pos}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().Kind {
		case TokStar:
			op = "*"
		case TokSlash:
			op = "/"
		default:
			return l, nil
		}
		tok := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, Pos: tok.Pos}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	if t := p.peek(); t.Kind == TokMinus {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x, Pos: t.Pos}, nil
	}
	return p.postfixExpr()
}

// postfixExpr := primary {'.' IDENT} — field access on catalog tuples.
func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokDot {
		dot := p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		x = &FieldExpr{X: x, Name: strings.ToLower(name.Text), Pos: dot.Pos}
	}
	return x, nil
}

// primaryExpr := NUMBER | STRING | IDENT ['(' args ')'] | '{' exprs '}'
//
//	| '(' expr ')' | query
func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Text: t.Text, Pos: t.Pos}, nil
	case TokString:
		p.next()
		return &StringLit{Value: t.Text, Pos: t.Pos}, nil
	case TokSelect:
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &SubqueryExpr{Query: q, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		inner, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case TokLBrace:
		p.next()
		set := &SetLit{Pos: t.Pos}
		for p.peek().Kind != TokRBrace {
			if len(set.Elems) > 0 {
				if _, err := p.expect(TokComma); err != nil {
					return nil, err
				}
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			set.Elems = append(set.Elems, e)
		}
		p.next() // '}'
		if len(set.Elems) == 0 {
			return nil, errorfAt(t.Pos, "empty set literal")
		}
		return set, nil
	case TokIdent:
		p.next()
		if p.peek().Kind != TokLParen {
			return &Ident{Name: t.Text, Pos: t.Pos}, nil
		}
		p.next() // '('
		call := &Call{Name: strings.ToLower(t.Text), Pos: t.Pos}
		for p.peek().Kind != TokRParen {
			if len(call.Args) > 0 {
				if _, err := p.expect(TokComma); err != nil {
					return nil, err
				}
			}
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		p.next() // ')'
		return call, nil
	default:
		return nil, errorfAt(t.Pos, "expected expression, found %s %q", t.Kind, t.Text)
	}
}
