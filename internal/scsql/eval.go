package scsql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"scsq/internal/catalog"
	"scsq/internal/cndb"
	"scsq/internal/core"
	"scsq/internal/hw"
)

// Catalog stores user-defined query functions (create function ... as
// select ...). The zero value is empty and usable.
type Catalog struct {
	mu   sync.Mutex
	defs map[string]*FuncDef
}

// Define registers (or replaces) a function definition.
func (c *Catalog) Define(def *FuncDef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.defs == nil {
		c.defs = make(map[string]*FuncDef)
	}
	c.defs[strings.ToLower(def.Name)] = def
}

// Lookup returns the definition of name, if any.
func (c *Catalog) Lookup(name string) (*FuncDef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	def, ok := c.defs[strings.ToLower(name)]
	return def, ok
}

// Names returns the defined function names, sorted.
func (c *Catalog) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.defs))
	for n := range c.defs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Result is the outcome of executing one SCSQL statement.
type Result struct {
	// Defined is the function name for a create-function statement.
	Defined string
	// Stream is the client-side result stream for a query statement.
	Stream *core.ClientStream
}

// Evaluator executes SCSQL statements against a core engine.
type Evaluator struct {
	eng *core.Engine
	cat *Catalog
}

// NewEvaluator returns an evaluator over eng using cat for user-defined
// functions (a nil cat gets a fresh catalog).
func NewEvaluator(eng *core.Engine, cat *Catalog) *Evaluator {
	if cat == nil {
		cat = &Catalog{}
	}
	return &Evaluator{eng: eng, cat: cat}
}

// Catalog returns the evaluator's function catalog.
func (ev *Evaluator) Catalog() *Catalog { return ev.cat }

// Exec parses and executes one statement. For queries, the returned
// Result.Stream must be drained by the caller (which starts the RPs).
func (ev *Evaluator) Exec(src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return ev.ExecStatement(stmt)
}

// ExecStatement executes a parsed statement.
func (ev *Evaluator) ExecStatement(stmt *Statement) (*Result, error) {
	if stmt.Def != nil {
		ev.cat.Define(stmt.Def)
		return &Result{Defined: stmt.Def.Name}, nil
	}
	stream, err := ev.evalQuery(stmt.Query, newScope(nil))
	if err != nil {
		return nil, err
	}
	return &Result{Stream: stream}, nil
}

// scope is a lexical environment of bound query variables.
type scope struct {
	parent *scope
	vars   map[string]any
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: make(map[string]any)}
}

func (s *scope) lookup(name string) (any, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) bind(name string, v any) { s.vars[name] = v }

// evalQuery evaluates a full query: where-clause bindings in dependency
// order, then the query body (select expression plus any stream
// comprehension) as a client-manager plan.
func (ev *Evaluator) evalQuery(q *Query, env *scope) (*core.ClientStream, error) {
	return ev.eng.ClientPlan(func(b *core.PlanBuilder) (sqepOperator, error) {
		return ev.compileQueryBody(q, env, b)
	})
}

// splitConds partitions a where clause into '=' bindings, at most one 'in'
// driver, and predicate conjuncts.
func splitConds(q *Query) (binds []Cond, driver *Cond, preds []Cond, err error) {
	for i, c := range q.Where {
		switch {
		case c.Pred != nil:
			preds = append(preds, c)
		case c.In:
			if driver != nil {
				return nil, nil, nil, errorfAt(c.Pos, "a query may have at most one 'in' binding")
			}
			driver = &q.Where[i]
		default:
			binds = append(binds, c)
		}
	}
	return binds, driver, preds, nil
}

// evalBindings resolves the '=' conjuncts of q's where clause in an order
// compatible with their mutual references and binds them in env. 'in'
// drivers and predicates are left to the caller; the driver's variable
// counts as bound for the completeness check.
func (ev *Evaluator) evalBindings(q *Query, env *scope) error {
	declared := make(map[string]Decl, len(q.From))
	for _, d := range q.From {
		declared[d.Name] = d
	}
	binds, driver, _, err := splitConds(q)
	if err != nil {
		return err
	}
	for _, c := range binds {
		if _, ok := declared[c.Name]; !ok {
			return errorfAt(c.Pos, "binding of undeclared variable %q", c.Name)
		}
	}

	order, err := topoOrder(binds, declared, env)
	if err != nil {
		return err
	}
	for _, c := range order {
		v, err := ev.evalBindingExpr(c.Expr, env)
		if err != nil {
			return fmt.Errorf("binding %q: %w", c.Name, err)
		}
		if err := checkDeclType(declared[c.Name], v); err != nil {
			return errorfAt(c.Pos, "%v", err)
		}
		env.bind(c.Name, v)
	}
	for name, d := range declared {
		if driver != nil && driver.Name == name {
			continue // bound per element by the iteration
		}
		if _, ok := env.lookup(name); !ok {
			return errorfAt(d.Pos, "declared variable %q is never bound", name)
		}
	}
	return nil
}

// topoOrder sorts bindings so every binding is evaluated after the bindings
// it references (Kahn's algorithm over declared-variable references).
func topoOrder(binds []Cond, declared map[string]Decl, env *scope) ([]Cond, error) {
	boundBy := make(map[string]int, len(binds)) // var -> binding index
	for i, c := range binds {
		if _, dup := boundBy[c.Name]; dup {
			return nil, errorfAt(c.Pos, "variable %q bound twice", c.Name)
		}
		boundBy[c.Name] = i
	}
	deps := make([][]int, len(binds))
	indeg := make([]int, len(binds))
	for i, c := range binds {
		for _, ref := range freeVars(c.Expr) {
			if ref == c.Name {
				continue
			}
			if _, isOuter := env.lookup(ref); isOuter {
				continue // bound in an enclosing scope (function param etc.)
			}
			j, ok := boundBy[ref]
			if !ok {
				if _, decl := declared[ref]; decl {
					return nil, errorfAt(c.Pos, "binding of %q references %q, which is declared but never bound", c.Name, ref)
				}
				return nil, errorfAt(c.Pos, "binding of %q references unknown variable %q", c.Name, ref)
			}
			deps[j] = append(deps[j], i)
			indeg[i]++
		}
	}
	var (
		queue []int
		order []Cond
	)
	for i := range binds {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, binds[i])
		for _, j := range deps[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != len(binds) {
		return nil, errorfAt(binds[0].Pos, "cyclic dependency between where-clause bindings")
	}
	return order, nil
}

// freeVars collects identifier references in an expression, including
// references inside embedded subqueries (minus the subqueries' own
// declarations).
func freeVars(e Expr) []string {
	var out []string
	var walk func(e Expr, shadow map[string]bool)
	walkQuery := func(q *Query, shadow map[string]bool) {
		inner := make(map[string]bool, len(shadow)+len(q.From))
		for k := range shadow {
			inner[k] = true
		}
		for _, d := range q.From {
			inner[d.Name] = true
		}
		walk(q.Select, inner)
		for _, c := range q.Where {
			if c.Expr != nil {
				walk(c.Expr, inner)
			}
			if c.Pred != nil {
				walk(c.Pred, inner)
			}
		}
	}
	walk = func(e Expr, shadow map[string]bool) {
		switch x := e.(type) {
		case *Ident:
			if !shadow[x.Name] {
				out = append(out, x.Name)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a, shadow)
			}
		case *SetLit:
			for _, el := range x.Elems {
				walk(el, shadow)
			}
		case *BinaryExpr:
			walk(x.L, shadow)
			walk(x.R, shadow)
		case *UnaryExpr:
			walk(x.X, shadow)
		case *FieldExpr:
			walk(x.X, shadow)
		case *SubqueryExpr:
			walkQuery(x.Query, shadow)
		}
	}
	walk(e, map[string]bool{})
	return out
}

func checkDeclType(d Decl, v any) error {
	switch {
	case d.Bag:
		if _, ok := v.([]*core.SP); !ok {
			return fmt.Errorf("variable %q declared 'bag of %s' but bound to %T", d.Name, d.Type, v)
		}
	case d.Type == DeclSP:
		if _, ok := v.(*core.SP); !ok {
			return fmt.Errorf("variable %q declared 'sp' but bound to %T", d.Name, v)
		}
	case d.Type == DeclInteger:
		if _, ok := v.(int64); !ok {
			return fmt.Errorf("variable %q declared 'integer' but bound to %T", d.Name, v)
		}
	case d.Type == DeclString:
		if _, ok := v.(string); !ok {
			return fmt.Errorf("variable %q declared 'string' but bound to %T", d.Name, v)
		}
	}
	return nil
}

// evalBindingExpr evaluates the right-hand side of a '=' binding: sp(),
// spv(), or a scalar expression.
func (ev *Evaluator) evalBindingExpr(e Expr, env *scope) (any, error) {
	if call, ok := e.(*Call); ok {
		switch call.Name {
		case "sp":
			return ev.doSP(call, env)
		case "spv":
			return ev.doSPV(call, env)
		}
	}
	return ev.evalScalar(e, env)
}

// doSP implements sp(subquery, cluster?, alloc?): assign the stream
// expression to a new stream process.
func (ev *Evaluator) doSP(call *Call, env *scope) (*core.SP, error) {
	if len(call.Args) < 1 || len(call.Args) > 3 {
		return nil, errorfAt(call.Pos, "sp() takes 1-3 arguments, got %d", len(call.Args))
	}
	cluster := hw.BlueGene // default when the query omits the cluster
	if len(call.Args) >= 2 {
		c, err := ev.evalCluster(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		cluster = c
	}
	var seq *cndb.Sequence
	if len(call.Args) == 3 {
		s, err := ev.evalAllocSeq(call.Args[2], env)
		if err != nil {
			return nil, err
		}
		seq = s
	}
	streamExpr := call.Args[0]
	return ev.eng.SP(func(b *core.PlanBuilder) (sqepOperator, error) {
		return ev.compileStream(streamExpr, env, b)
	}, cluster, seq)
}

// doSPV implements spv(subquery-set, cluster, alloc?): assign each subquery
// in the set — one per binding of the subquery's 'in' variable — to a new
// stream process, sharing one allocation sequence across the batch.
func (ev *Evaluator) doSPV(call *Call, env *scope) ([]*core.SP, error) {
	if len(call.Args) < 1 || len(call.Args) > 3 {
		return nil, errorfAt(call.Pos, "spv() takes 1-3 arguments, got %d", len(call.Args))
	}
	sub, ok := call.Args[0].(*SubqueryExpr)
	if !ok {
		return nil, errorfAt(call.Args[0].ePos(), "the first argument of spv() must be a subquery, got %s", call.Args[0])
	}
	cluster := hw.BlueGene // default when the query omits the cluster
	var err error
	if len(call.Args) >= 2 {
		cluster, err = ev.evalCluster(call.Args[1], env)
		if err != nil {
			return nil, err
		}
	}
	var seq *cndb.Sequence
	if len(call.Args) == 3 {
		seq, err = ev.evalAllocSeq(call.Args[2], env)
		if err != nil {
			return nil, err
		}
	}

	q := sub.Query
	_, driver, _, err := splitConds(q)
	if err != nil {
		return nil, err
	}
	domain := []any{nil} // a driver-less subquery instantiates once
	if driver != nil {
		domain, err = ev.evalDomain(driver.Expr, env)
		if err != nil {
			return nil, err
		}
	}

	_, _, preds, err := splitConds(q)
	if err != nil {
		return nil, err
	}
	subs := make([]core.Subquery, 0, len(domain))
	for _, dv := range domain {
		inst := newScope(env)
		if driver != nil {
			inst.bind(driver.Name, dv)
		}
		// Predicates filter the iteration domain at plan time: instances
		// whose driver value fails a predicate get no stream process.
		keep := true
		for _, p := range preds {
			res, err := ev.evalScalar(p.Pred, inst)
			if err != nil {
				return nil, err
			}
			b, ok := res.(bool)
			if !ok {
				return nil, errorfAt(p.Pos, "predicate %s is not boolean (got %T)", p.Pred, res)
			}
			if !b {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		// Evaluate the instance's remaining '=' bindings, if any.
		if err := ev.evalBindings(q, inst); err != nil {
			return nil, err
		}
		sel := q.Select
		instEnv := inst
		subs = append(subs, func(b *core.PlanBuilder) (sqepOperator, error) {
			return ev.compileStream(sel, instEnv, b)
		})
	}
	if len(subs) == 0 {
		return nil, errorfAt(call.Pos, "spv() instantiated no stream processes (empty or fully filtered domain)")
	}
	return ev.eng.SPV(subs, cluster, seq)
}

// evalDomain evaluates the domain of an 'in' binding: iota(n,m) yields
// integers, a bag-of-sp variable yields its processes.
func (ev *Evaluator) evalDomain(e Expr, env *scope) ([]any, error) {
	if call, ok := e.(*Call); ok && call.Name == "iota" {
		if len(call.Args) != 2 {
			return nil, errorfAt(call.Pos, "iota() takes 2 arguments, got %d", len(call.Args))
		}
		from, err := ev.evalInt(call.Args[0], env)
		if err != nil {
			return nil, err
		}
		to, err := ev.evalInt(call.Args[1], env)
		if err != nil {
			return nil, err
		}
		var out []any
		for i := from; i <= to; i++ {
			out = append(out, i)
		}
		return out, nil
	}
	v, err := ev.evalScalar(e, env)
	if err != nil {
		return nil, err
	}
	switch x := v.(type) {
	case []*core.SP:
		out := make([]any, len(x))
		for i, sp := range x {
			out[i] = sp
		}
		return out, nil
	default:
		return nil, errorfAt(e.ePos(), "cannot iterate over %T", v)
	}
}

// evalCluster evaluates a cluster-name argument.
func (ev *Evaluator) evalCluster(e Expr, env *scope) (hw.ClusterName, error) {
	v, err := ev.evalScalar(e, env)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", errorfAt(e.ePos(), "cluster argument must be a string, got %T", v)
	}
	c := hw.ClusterName(strings.ToLower(s))
	if !c.Valid() {
		return "", errorfAt(e.ePos(), "unknown cluster %q (want 'fe', 'be' or 'bg')", s)
	}
	return c, nil
}

// evalAllocSeq evaluates a node allocation query: an explicit node id,
// urr(cluster), inPset(k) or psetrr().
func (ev *Evaluator) evalAllocSeq(e Expr, env *scope) (*cndb.Sequence, error) {
	switch x := e.(type) {
	case *Call:
		switch x.Name {
		case "urr":
			if len(x.Args) != 1 {
				return nil, errorfAt(x.Pos, "urr() takes 1 argument, got %d", len(x.Args))
			}
			c, err := ev.evalCluster(x.Args[0], env)
			if err != nil {
				return nil, err
			}
			cc := ev.eng.Coordinator(c)
			if cc == nil {
				return nil, errorfAt(x.Pos, "no coordinator for cluster %q", c)
			}
			return cndb.URR(cc.DB()), nil
		case "inpset":
			if len(x.Args) != 1 {
				return nil, errorfAt(x.Pos, "inPset() takes 1 argument, got %d", len(x.Args))
			}
			k, err := ev.evalInt(x.Args[0], env)
			if err != nil {
				return nil, err
			}
			return cndb.InPset(ev.eng.Env(), int(k))
		case "psetrr":
			if len(x.Args) != 0 {
				return nil, errorfAt(x.Pos, "psetrr() takes no arguments")
			}
			return cndb.PsetRR(ev.eng.Env())
		default:
			return nil, errorfAt(x.Pos, "unknown allocation-sequence function %q", x.Name)
		}
	default:
		id, err := ev.evalInt(e, env)
		if err != nil {
			return nil, err
		}
		return cndb.NewSequence(int(id))
	}
}

// evalScalar evaluates a plan-time scalar expression. The same evaluator
// runs per stream element inside comprehensions, with the iteration
// variable bound in a child scope.
func (ev *Evaluator) evalScalar(e Expr, env *scope) (any, error) {
	switch x := e.(type) {
	case *BinaryExpr:
		l, err := ev.evalScalar(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := ev.evalScalar(x.R, env)
		if err != nil {
			return nil, err
		}
		v, err := applyBinary(x.Op, l, r)
		if err != nil {
			return nil, errorfAt(x.Pos, "%v", err)
		}
		return v, nil
	case *UnaryExpr:
		v, err := ev.evalScalar(x.X, env)
		if err != nil {
			return nil, err
		}
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		default:
			return nil, errorfAt(x.Pos, "cannot negate %T", v)
		}
	case *FieldExpr:
		v, err := ev.evalScalar(x.X, env)
		if err != nil {
			return nil, err
		}
		tup, ok := v.(catalog.Tuple)
		if !ok {
			return nil, errorfAt(x.Pos, "field access .%s requires a catalog tuple, got %T", x.Name, v)
		}
		fv, ok := tup.Field(x.Name)
		if !ok {
			return nil, errorfAt(x.Pos, "tuple %s has no column %q (schema %s)", tup, x.Name, tup.Schema)
		}
		return fv, nil
	case *NumberLit:
		if strings.Contains(x.Text, ".") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return nil, errorfAt(x.Pos, "bad number %q", x.Text)
			}
			return f, nil
		}
		n, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, errorfAt(x.Pos, "bad number %q", x.Text)
		}
		return n, nil
	case *StringLit:
		return x.Value, nil
	case *Ident:
		v, ok := env.lookup(x.Name)
		if !ok {
			return nil, errorfAt(x.Pos, "unbound variable %q", x.Name)
		}
		return v, nil
	case *Call:
		switch x.Name {
		case "filename":
			if len(x.Args) != 1 {
				return nil, errorfAt(x.Pos, "filename() takes 1 argument, got %d", len(x.Args))
			}
			i, err := ev.evalInt(x.Args[0], env)
			if err != nil {
				return nil, err
			}
			ft := ev.eng.FileTable()
			if ft == nil {
				return nil, errorfAt(x.Pos, "no file table configured")
			}
			return ft.Name(i)
		default:
			return nil, errorfAt(x.Pos, "%q is not a scalar function", x.Name)
		}
	default:
		return nil, errorfAt(e.ePos(), "cannot evaluate %s as a scalar", e)
	}
}

func (ev *Evaluator) evalInt(e Expr, env *scope) (int64, error) {
	v, err := ev.evalScalar(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, errorfAt(e.ePos(), "expected an integer, got %T", v)
	}
	return n, nil
}

// evalSP resolves an expression to a single stream process.
func (ev *Evaluator) evalSP(e Expr, env *scope) (*core.SP, error) {
	v, err := ev.evalBindingExpr(e, env)
	if err != nil {
		return nil, err
	}
	sp, ok := v.(*core.SP)
	if !ok {
		return nil, errorfAt(e.ePos(), "expected a stream process, got %T", v)
	}
	return sp, nil
}

// evalSPBag resolves an expression to a bag of stream processes: a bag
// variable, a single sp, a set literal, or an spv() call.
func (ev *Evaluator) evalSPBag(e Expr, env *scope) ([]*core.SP, error) {
	if set, ok := e.(*SetLit); ok {
		var out []*core.SP
		for _, el := range set.Elems {
			sp, err := ev.evalSP(el, env)
			if err != nil {
				return nil, err
			}
			out = append(out, sp)
		}
		return out, nil
	}
	v, err := ev.evalBindingExpr(e, env)
	if err != nil {
		return nil, err
	}
	switch x := v.(type) {
	case []*core.SP:
		return x, nil
	case *core.SP:
		return []*core.SP{x}, nil
	default:
		return nil, errorfAt(e.ePos(), "expected stream processes, got %T", v)
	}
}
