package scsql

import (
	"strings"
	"testing"

	"scsq/internal/core"
)

func execErr(t *testing.T, src string) error {
	t.Helper()
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	res, err := ev.Exec(src)
	if err != nil {
		return err
	}
	if res.Stream != nil {
		if _, derr := res.Stream.Drain(); derr != nil {
			return derr
		}
	}
	t.Fatalf("statement unexpectedly succeeded: %s", src)
	return nil
}

func wantErrContaining(t *testing.T, src, fragment string) {
	t.Helper()
	err := execErr(t, src)
	if !strings.Contains(err.Error(), fragment) {
		t.Errorf("error %q does not mention %q\nquery: %s", err, fragment, src)
	}
}

func TestEvalErrors(t *testing.T) {
	t.Run("unknown function", func(t *testing.T) {
		wantErrContaining(t, `select nosuchfn(extract(a)) from sp a where a=sp(iota(1,2), 'be');`, "unknown function")
	})
	t.Run("unbound variable", func(t *testing.T) {
		wantErrContaining(t, `select extract(zz) from sp a where a=sp(iota(1,2), 'be');`, "unbound variable")
	})
	t.Run("declared but never bound", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a, sp b where a=sp(iota(1,2), 'be');`, "never bound")
	})
	t.Run("bound twice", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=sp(iota(1,2), 'be') and a=sp(iota(1,2), 'be');`, "bound twice")
	})
	t.Run("cyclic bindings", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a, sp b where a=sp(extract(b), 'be') and b=sp(extract(a), 'be');`, "cyclic")
	})
	t.Run("unknown cluster", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=sp(iota(1,2), 'zz');`, "unknown cluster")
	})
	t.Run("type mismatch sp", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=4;`, "declared 'sp'")
	})
	t.Run("type mismatch integer", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a, integer n where a=sp(iota(1,2), 'be') and n=sp(iota(1,1), 'be');`, "declared 'integer'")
	})
	t.Run("two drivers", func(t *testing.T) {
		wantErrContaining(t, `select x from integer x, integer y where x in iota(1,2) and y in iota(1,2);`, "at most one 'in'")
	})
	t.Run("predicate without iteration", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a, integer n where a=sp(iota(1,2), 'be') and n=1 and n > 0;`, "require an 'in' iteration")
	})
	t.Run("non-boolean predicate", func(t *testing.T) {
		wantErrContaining(t, `select x from integer x where x in extract(a) and x + 1;`, "must be a binding")
	})
	t.Run("division by zero", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a, integer n where a=sp(iota(1,n/0), 'be') and n=4;`, "division by zero")
	})
	t.Run("sp arity", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=sp();`, "sp() takes")
	})
	t.Run("spv needs subquery", func(t *testing.T) {
		wantErrContaining(t, `select merge(a) from bag of sp a where a=spv(iota(1,2), 'be');`, "must be a subquery")
	})
	t.Run("allocation function unknown", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=sp(iota(1,2), 'be', wat());`, "unknown allocation-sequence function")
	})
	t.Run("filename without table", func(t *testing.T) {
		wantErrContaining(t, `select merge(spv((select grep('x', filename(i)) from integer i where i in iota(1,2)), 'be'));`, "no file table")
	})
	t.Run("radixcombine requires merge", func(t *testing.T) {
		wantErrContaining(t, `select radixcombine(extract(a)) from sp a where a=sp(iota(1,2), 'be');`, "requires merge")
	})
	t.Run("radixcombine needs two processes", func(t *testing.T) {
		wantErrContaining(t, `select radixcombine(merge({a})) from sp a where a=sp(iota(1,2), 'be');`, "exactly two")
	})
	t.Run("winagg kind", func(t *testing.T) {
		wantErrContaining(t, `select winagg(extract(a), 'median', 3, 3) from sp a where a=sp(iota(1,9), 'be');`, "unknown window aggregate")
	})
	t.Run("iterate over scalar", func(t *testing.T) {
		wantErrContaining(t, `select merge(spv((select gen_array(10,1) from integer i where i in 5), 'be'));`, "cannot iterate")
	})
	t.Run("scalar misuse", func(t *testing.T) {
		wantErrContaining(t, `select extract(a) from sp a where a=sp(gen_array('big', 1), 'be');`, "expected an integer")
	})
}

func TestBGNodeExhaustionFailsQuery(t *testing.T) {
	// "In case the stream contains no available node, the query will fail."
	// Two SPs pinned to the same BG node: CNK runs one process per node.
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	_, err := ev.Exec(`
select extract(b)
from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg', 1)
and   a=sp(gen_array(1000,1), 'bg', 1);`)
	if err == nil || !strings.Contains(err.Error(), "no available node") {
		t.Fatalf("err = %v, want no-available-node failure", err)
	}
}

func TestUserFunctionArityAndScope(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	if _, err := ev.Exec(`create function two(integer n) -> stream as select extract(a) from sp a where a=sp(iota(1,n), 'be');`); err != nil {
		t.Fatal(err)
	}
	// Wrong arity.
	if _, err := ev.Exec(`select two();`); err == nil || !strings.Contains(err.Error(), "takes 1 arguments") {
		t.Fatalf("arity error = %v", err)
	}
	// Wrong parameter type.
	if _, err := ev.Exec(`select two('x');`); err == nil {
		t.Fatal("string for integer parameter should fail")
	}
	// Function bodies must not see caller variables beyond parameters.
	e.Reset()
	if _, err := ev.Exec(`create function leaky() -> stream as select extract(q) from sp q where q=sp(iota(1,outer), 'be');`); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Exec(`select leaky() from integer outer where outer=3;`)
	if err == nil {
		if _, err = res.Stream.Drain(); err == nil {
			t.Fatal("function body must not capture caller bindings")
		}
	}
}

func TestCatalog(t *testing.T) {
	var cat Catalog
	if _, ok := cat.Lookup("f"); ok {
		t.Error("empty catalog lookup should miss")
	}
	cat.Define(&FuncDef{Name: "F2"})
	cat.Define(&FuncDef{Name: "a1"})
	if _, ok := cat.Lookup("f2"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	names := cat.Names()
	if len(names) != 2 || names[0] != "a1" || names[1] != "f2" {
		t.Errorf("names = %v", names)
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	if ev.Catalog() == nil {
		t.Error("default catalog must exist")
	}
	cat := &Catalog{}
	ev2 := NewEvaluator(e, cat)
	if ev2.Catalog() != cat {
		t.Error("provided catalog must be used")
	}
}

func TestDefaultClusterIsBlueGene(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	res, err := ev.Exec(`select extract(a) from sp a where a=sp(iota(1,3));`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Stream.Drain(); err != nil {
		t.Fatal(err)
	}
}

var _ = core.Engine{} // keep the core import for newTestEngine's option types
