package scsql

import (
	"reflect"
	"testing"
)

// execValues runs a query and returns the drained element values.
func execValues(t *testing.T, src string) []any {
	t.Helper()
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	res, err := ev.Exec(src)
	if err != nil {
		t.Fatalf("exec: %v\nquery: %s", err, src)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatalf("drain: %v\nquery: %s", err, src)
	}
	out := make([]any, len(els))
	for i, el := range els {
		out[i] = el.Value
	}
	return out
}

func TestComprehensionFilterOverStream(t *testing.T) {
	// The 'in' iteration generalizes from static domains to streams: the
	// predicate filters the extracted stream element-wise.
	got := execValues(t, `
select x
from sp a, integer x
where a=sp(iota(1,10), 'be')
and   x in extract(a)
and   x > 7;`)
	want := []any{int64(8), int64(9), int64(10)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("filtered = %v, want %v", got, want)
	}
}

func TestComprehensionMapExpression(t *testing.T) {
	got := execValues(t, `
select x*x + 1
from sp a, integer x
where a=sp(iota(1,4), 'be')
and   x in extract(a);`)
	want := []any{int64(2), int64(5), int64(10), int64(17)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mapped = %v, want %v", got, want)
	}
}

func TestComprehensionMultiplePredicates(t *testing.T) {
	got := execValues(t, `
select x
from sp a, integer x
where a=sp(iota(1,20), 'be')
and   x in extract(a)
and   x > 5
and   x*2 <= 16;`)
	want := []any{int64(6), int64(7), int64(8)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("multi-predicate = %v, want %v", got, want)
	}
}

func TestComprehensionOverIotaDirect(t *testing.T) {
	// A driver with a static domain also works outside spv(): it compiles
	// to the iota stream operator filtered in place.
	got := execValues(t, `select i*10 from integer i where i in iota(1,5) and i <> 3;`)
	want := []any{int64(10), int64(20), int64(40), int64(50)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("iota comprehension = %v, want %v", got, want)
	}
}

func TestComprehensionInsideSP(t *testing.T) {
	// The comprehension runs inside a remote stream process: only filtered
	// and mapped values cross the network.
	got := execValues(t, `
select extract(b)
from sp a, sp b
where b=sp((select x + 100 from integer x where x in extract(a) and x < 3), 'bg')
and   a=sp(iota(1,6), 'be');`)
	want := []any{int64(101), int64(102)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote comprehension = %v, want %v", got, want)
	}
}

func TestSPVDomainPredicateFiltersInstances(t *testing.T) {
	// In spv(), predicates filter the iteration domain at plan time: only
	// the surviving values get stream processes.
	got := execValues(t, `
sum(merge(spv(
    (select count(iota(1,i))
     from integer i
     where i in iota(1,10) and i > 8), 'be')));`)
	// Two instances (i=9, i=10) each count their iota: 9 + 10 = 19.
	if !reflect.DeepEqual(got, []any{int64(19)}) {
		t.Errorf("spv filtered sum = %v, want [19]", got)
	}
}

func TestArithmeticInPlanTimeArguments(t *testing.T) {
	got := execValues(t, `
select extract(a)
from sp a, integer n
where a=sp(iota(1, n*2 - 1), 'be')
and   n=3;`)
	if len(got) != 5 {
		t.Errorf("iota(1, 3*2-1) yielded %d elements, want 5", len(got))
	}
}

func TestUnaryMinusAndFloats(t *testing.T) {
	got := execValues(t, `select x * -1.5 from integer x where x in iota(1,2);`)
	want := []any{-1.5, -3.0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("floats = %v, want %v", got, want)
	}
}

func TestComprehensionInsideUserFunction(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	if _, err := ev.Exec(`
create function evens(integer limit) -> stream
as select x from sp src, integer x
where src=sp(iota(1,limit), 'be')
and   x in extract(src)
and   x/2*2 >= x;`); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Exec(`select evens(6);`)
	if err != nil {
		t.Fatal(err)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatal(err)
	}
	var got []any
	for _, el := range els {
		got = append(got, el.Value)
	}
	want := []any{int64(2), int64(4), int64(6)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("evens = %v, want %v", got, want)
	}
}

func TestLimitStopCondition(t *testing.T) {
	// limit() makes a stream finite — the paper's "stop condition in the
	// query" — and terminates the whole process graph early, producers
	// included.
	got := execValues(t, `
select limit(extract(a), 4)
from sp a
where a=sp(gen_array(1000, 1000), 'bg');`)
	if len(got) != 4 {
		t.Fatalf("limit over a 1000-array stream = %d elements, want 4", len(got))
	}
	// The producer generated far fewer than 1000 arrays before termination
	// was detected... it may still run to completion against the drained
	// inbox, but the query itself finished with 4 results — the point is
	// that Drain returned at all.
}

func TestLimitInsideSP(t *testing.T) {
	got := execValues(t, `
select extract(b)
from sp a, sp b
where b=sp(count(limit(extract(a), 5)), 'bg')
and   a=sp(iota(1,100), 'be');`)
	if len(got) != 1 || got[0] != int64(5) {
		t.Fatalf("count(limit) = %v, want [5]", got)
	}
}

func TestApplyBinaryTable(t *testing.T) {
	tests := []struct {
		op   string
		l, r any
		want any
	}{
		{"+", int64(2), int64(3), int64(5)},
		{"-", int64(2), int64(3), int64(-1)},
		{"*", int64(4), int64(5), int64(20)},
		{"/", int64(7), int64(2), int64(3)},
		{"+", int64(1), 2.5, 3.5},
		{"/", 5.0, 2.0, 2.5},
		{"<", int64(1), int64(2), true},
		{"<=", 2.0, int64(2), true},
		{">", "b", "a", true},
		{">=", "a", "b", false},
		{"<>", int64(1), int64(1), false},
		{"<>", "x", "y", true},
	}
	for _, tt := range tests {
		got, err := applyBinary(tt.op, tt.l, tt.r)
		if err != nil {
			t.Errorf("applyBinary(%v %s %v): %v", tt.l, tt.op, tt.r, err)
			continue
		}
		if got != tt.want {
			t.Errorf("applyBinary(%v %s %v) = %v, want %v", tt.l, tt.op, tt.r, got, tt.want)
		}
	}
	if _, err := applyBinary("/", int64(1), int64(0)); err == nil {
		t.Error("integer division by zero should fail")
	}
	if _, err := applyBinary("/", 1.0, 0.0); err == nil {
		t.Error("float division by zero should fail")
	}
	if _, err := applyBinary("+", "a", "b"); err == nil {
		t.Error("string arithmetic should fail")
	}
	if _, err := applyBinary("<", "a", int64(1)); err == nil {
		t.Error("mixed string/number comparison should fail")
	}
	if _, err := applyBinary("??", int64(1), int64(1)); err == nil {
		t.Error("unknown operator should fail")
	}
}
