package scsql

import (
	"errors"
	"fmt"
)

// applyBinary evaluates an arithmetic or comparison operator over runtime
// values. Integer arithmetic stays integral (truncating division); mixing
// an integer with a float promotes to float. Comparisons work on numbers
// and on strings, yielding bool.
func applyBinary(op string, l, r any) (any, error) {
	switch op {
	case "+", "-", "*", "/":
		return applyArith(op, l, r)
	case "<", "<=", ">", ">=", "<>", "=":
		return applyCompare(op, l, r)
	default:
		return nil, fmt.Errorf("unknown operator %q", op)
	}
}

var errDivZero = errors.New("division by zero")

func applyArith(op string, l, r any) (any, error) {
	if li, lok := l.(int64); lok {
		if ri, rok := r.(int64); rok {
			switch op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			default:
				if ri == 0 {
					return nil, errDivZero
				}
				return li / ri, nil
			}
		}
	}
	lf, err := toFloat(l)
	if err != nil {
		return nil, fmt.Errorf("left operand of %q: %w", op, err)
	}
	rf, err := toFloat(r)
	if err != nil {
		return nil, fmt.Errorf("right operand of %q: %w", op, err)
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	default:
		if rf == 0 {
			return nil, errDivZero
		}
		return lf / rf, nil
	}
}

func applyCompare(op string, l, r any) (any, error) {
	if ls, lok := l.(string); lok {
		rs, rok := r.(string)
		if !rok {
			return nil, fmt.Errorf("cannot compare string with %T", r)
		}
		switch op {
		case "<":
			return ls < rs, nil
		case "<=":
			return ls <= rs, nil
		case ">":
			return ls > rs, nil
		case ">=":
			return ls >= rs, nil
		case "=":
			return ls == rs, nil
		default:
			return ls != rs, nil
		}
	}
	lf, err := toFloat(l)
	if err != nil {
		return nil, fmt.Errorf("left operand of %q: %w", op, err)
	}
	rf, err := toFloat(r)
	if err != nil {
		return nil, fmt.Errorf("right operand of %q: %w", op, err)
	}
	switch op {
	case "<":
		return lf < rf, nil
	case "<=":
		return lf <= rf, nil
	case ">":
		return lf > rf, nil
	case ">=":
		return lf >= rf, nil
	case "=":
		return lf == rf, nil
	default:
		return lf != rf, nil
	}
}

func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case int64:
		return float64(x), nil
	case float64:
		return x, nil
	default:
		return 0, fmt.Errorf("not a number: %T", v)
	}
}
