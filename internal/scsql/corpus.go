package scsql

import "fmt"

// This file holds the paper's query corpus in canonical form. The texts
// follow the listings in the paper §2.4 and §3 exactly, except that (a)
// obvious typos in the printed listings are fixed (the paper's Figure-5 and
// Query-3 listings have misplaced parentheses), and (b) the workload
// parameters — array size, array count, and the parallelism degree n — are
// template parameters so the experiment harness can sweep them. With
// size=3000000, count=100 and n=4 the texts match the paper character for
// character (modulo whitespace).

// Figure5Query is the intra-BG point-to-point streaming query (paper §3.1,
// Figure 5): a generates a stream of large arrays on BG node 1 and b counts
// them on BG node 0.
func Figure5Query(size, count int) string {
	return fmt.Sprintf(`
select extract(b)
from sp a, sp b
where b=sp(streamof(count(extract(a))), 'bg', 0)
and   a=sp(gen_array(%d,%d), 'bg', 1);`, size, count)
}

// MergeQuery is the intra-BG stream-merging query (paper §3.1, Figures
// 7-8): c on node 0 merges and counts the streams of a on node x and b on
// node y. The sequential node selection of Figure 7A is x=1, y=2; the
// balanced selection of Figure 7B is x=1, y=4.
func MergeQuery(x, y, size, count int) string {
	return fmt.Sprintf(`
select extract(c)
from sp a, sp b, sp c
where c=sp(count(merge({a,b})), 'bg', 0)
and   a=sp(gen_array(%d,%d), 'bg', %d)
and   b=sp(gen_array(%d,%d), 'bg', %d);`, size, count, x, size, count, y)
}

// InboundQuery returns Query q (1..6) of the BG inbound streaming
// experiments (paper §3.2) with n parallel back-end streams of count arrays
// of size bytes each.
func InboundQuery(q, n, size, count int) (string, error) {
	gen := fmt.Sprintf(`(select gen_array(%d,%d)
      from integer i where i in iota(1,n))`, size, count)
	switch q {
	case 1:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, sp b, sp c,
integer n
where c=sp(extract(b), 'bg')
and   b=sp(count(merge(a)), 'bg')
and   a=spv(%s, 'be', 1)
and   n=%d;`, gen, n), nil
	case 2:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, sp b, sp c,
integer n
where c=sp(extract(b), 'bg')
and   b=sp(count(merge(a)), 'bg')
and   a=spv(%s, 'be', urr('be'))
and   n=%d;`, gen, n), nil
	case 3:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, bag of sp b, sp c,
integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and   b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
            'bg', inPset(1))
and   a=spv(%s, 'be', 1)
and   n=%d;`, gen, n), nil
	case 4:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, bag of sp b, sp c,
integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and   b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
            'bg', inPset(1))
and   a=spv(%s, 'be', urr('be'))
and   n=%d;`, gen, n), nil
	case 5:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, bag of sp b, sp c,
integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and   b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
            'bg', psetrr())
and   a=spv(%s, 'be', 1)
and   n=%d;`, gen, n), nil
	case 6:
		return fmt.Sprintf(`
select extract(c) from
bag of sp a, bag of sp b, sp c,
integer n
where c=sp(streamof(sum(merge(b))), 'bg')
and   b=spv(
  (select streamof(count(extract(p)))
   from sp p
   where p in a),
            'bg', psetrr())
and   a=spv(%s, 'be', urr('be'))
and   n=%d;`, gen, n), nil
	default:
		return "", fmt.Errorf("scsql: no such inbound query %d (want 1-6)", q)
	}
}

// GrepQuery is the distributed-grep mapreduce query (paper §2.4) with a
// configurable degree of parallelism (the paper uses 1000).
func GrepQuery(pattern string, parallel int) string {
	return fmt.Sprintf(`
merge(spv(
    select grep('%s', filename(i))
    from integer i
    where i in iota(1,%d), 'be', urr('be')));`, pattern, parallel)
}

// Radix2Def is the radix-2 FFT query function definition (paper §2.4).
const Radix2Def = `
create function radix2(string s)
              -> stream
as select radixcombine(merge({a,b}))
from sp a, sp b, sp c
where a=sp(fft(odd(extract(c))))
and   b=sp(fft(even(extract(c))))
and   c=sp(receiver(s));`
