package scsql_test

// End-to-end SCSQL surface of the system catalog: sys_* virtual tables as
// first-class relations, field access and equality predicates in
// comprehensions, live-delta streamof over tables, and the non-perturbation
// replay proof (bit-identical schedules with and without an active catalog
// subscriber).

import (
	"strings"
	"sync"
	"testing"
	"time"

	"scsq/internal/catalog"
	"scsq/internal/core"
	"scsq/internal/hw"
	"scsq/internal/sched"
	"scsq/internal/scsql"
	"scsq/internal/vtime"
)

func TestCountSysSessions(t *testing.T) {
	_, s, ev := newSchedEngine(t)
	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	rows := drainRows(t, ev, `select count(sys_sessions());`)
	if len(rows) != 1 || rows[0].Value != int64(1) {
		t.Fatalf("count(sys_sessions()) = %v, want one element 1", rows)
	}
}

// TestSysNodesFilteredJoin is the acceptance query: sys_nodes() joined with
// torus coordinates and filtered by field predicates — select the BlueGene
// nodes on the x=0 face of the torus.
func TestSysNodesFilteredJoin(t *testing.T) {
	e, _, ev := newSchedEngine(t)
	rows := drainRows(t, ev, `select n.node from stream n where n in sys_nodes() and n.cluster = 'bg' and n.x = 0;`)
	if len(rows) == 0 {
		t.Fatalf("no bg nodes with x = 0")
	}
	want := 0
	tor := e.Env().Torus
	for id := 0; id < e.Env().ClusterSize(hw.BlueGene); id++ {
		if co, err := tor.CoordOf(id); err == nil && co.X == 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("x=0 face has %d rows, want %d", len(rows), want)
	}
	for _, el := range rows {
		id, ok := el.Value.(int64)
		if !ok {
			t.Fatalf("n.node = %T, want int64", el.Value)
		}
		co, err := tor.CoordOf(int(id))
		if err != nil || co.X != 0 {
			t.Fatalf("node %d not on the x=0 face (coord %v, err %v)", id, co, err)
		}
	}
}

func TestSysMetricsPatternAnywhere(t *testing.T) {
	_, s, ev := newSchedEngine(t)
	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	rows := drainRows(t, ev, `select sys_metrics('%bytes%');`)
	if len(rows) == 0 {
		t.Fatalf("sys_metrics('%%bytes%%') matched nothing")
	}
	for _, el := range rows {
		tup, ok := el.Value.(catalog.Tuple)
		if !ok {
			t.Fatalf("sys_metrics row = %T, want catalog.Tuple", el.Value)
		}
		name, _ := tup.Field("name")
		if !strings.Contains(name.(string), "bytes") {
			t.Fatalf("row %s does not match %%bytes%%", tup)
		}
	}
}

func TestSysLinksReportEdges(t *testing.T) {
	e, s, ev := newSchedEngine(t)
	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	rows := drainRows(t, ev, `select sys_links();`)
	if len(rows) != len(e.Edges()) {
		t.Fatalf("sys_links() has %d rows, engine has %d edges", len(rows), len(e.Edges()))
	}
	carried := int64(0)
	for _, el := range rows {
		tup := el.Value.(catalog.Tuple)
		frames, _ := tup.Field("frames")
		carried += frames.(int64)
		if c, _ := tup.Field("carrier"); c != "mpi" && c != "tcp" && c != "udp" {
			t.Fatalf("unexpected carrier in %s", tup)
		}
	}
	if carried == 0 {
		t.Fatalf("no link carried frames: %v", rows)
	}
}

// TestPSIsSysSessionsView pins the thin-view contract: ps() emits exactly
// the sys_sessions rows.
func TestPSIsSysSessionsView(t *testing.T) {
	_, s, ev := newSchedEngine(t)
	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	ps := drainRows(t, ev, `select ps();`)
	sys := drainRows(t, ev, `select sys_sessions();`)
	if len(ps) != len(sys) {
		t.Fatalf("ps() has %d rows, sys_sessions() %d", len(ps), len(sys))
	}
	for i := range ps {
		a := ps[i].Value.(catalog.Tuple)
		b := sys[i].Value.(catalog.Tuple)
		if a.Key() != b.Key() {
			t.Fatalf("ps row %d = %s, sys_sessions row = %s", i, a, b)
		}
	}
}

// TestStreamofSysMetricsLive drives the live-delta stream end to end: the
// initial snapshot flows immediately, and a metric bumped afterwards is
// emitted on the next virtual-time tick.
func TestStreamofSysMetricsLive(t *testing.T) {
	e, s, ev := newSchedEngine(t)
	q, err := s.Submit(scsql.Figure5Query(30_000, 4))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := q.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}

	base := drainRows(t, ev, `select sys_metrics('rp.%');`)
	if len(base) == 0 {
		t.Fatalf("no rp.%% metrics after a run")
	}

	// Limit to one past the initial snapshot: the stream must block until a
	// tick delivers the delta row, then terminate.
	res, err := ev.Exec(`select limit(streamof(sys_metrics('rp.%')), ` + itoa(len(base)+1) + `);`)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	type drained struct {
		names []string
		err   error
	}
	got := make(chan drained, 1)
	go func() {
		els, err := res.Stream.Drain()
		var names []string
		for _, el := range els {
			if tup, ok := el.Value.(catalog.Tuple); ok {
				n, _ := tup.Field("name")
				names = append(names, n.(string))
			}
		}
		got <- drained{names, err}
	}()

	// The delta: a fresh rp.-prefixed counter. The drain opens the plan
	// concurrently, so give the initial snapshot a head start — either way
	// the stream must surface the new row before the limit is reached.
	time.Sleep(2 * time.Millisecond)
	e.Metrics().Counter("rp.live_probe.sys").Inc()
	var vt vtime.Time
	for {
		select {
		case d := <-got:
			if d.err != nil {
				t.Fatalf("drain: %v", d.err)
			}
			if len(d.names) != len(base)+1 {
				t.Fatalf("live stream yielded %d rows, want %d", len(d.names), len(base)+1)
			}
			seen := false
			for _, n := range d.names {
				seen = seen || n == "rp.live_probe.sys"
			}
			if !seen {
				t.Fatalf("live stream never surfaced rp.live_probe.sys: %v", d.names)
			}
			return
		default:
			vt = vt.Add(vtime.Millisecond)
			s.ObserveVTime(vt)
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// TestStreamofSysTableNeedsScheduler: without a scheduler there is no
// virtual-time pacing source, so the live form is an error (the plain
// snapshot form still works).
func TestStreamofSysTableNeedsScheduler(t *testing.T) {
	e, err := core.NewEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	defer e.Close()
	ev := scsql.NewEvaluator(e, nil)
	if _, err := ev.Exec(`select streamof(sys_metrics());`); err == nil || !strings.Contains(err.Error(), "no query scheduler") {
		t.Fatalf("err = %v, want no-scheduler error", err)
	}
	rows := drainRows(t, ev, `select count(sys_nodes());`)
	if len(rows) != 1 {
		t.Fatalf("count(sys_nodes()) on a bare engine: %v", rows)
	}
}

// fig5Outcome is the schedule fingerprint the replay proof compares: the
// result itself plus every BlueGene CPU's accounted busy time and free
// frontier. Any virtual-time perturbation by the observer would shift one
// of these.
type fig5Outcome struct {
	count    int
	makespan vtime.Time
	busy     []vtime.Duration
	free     []vtime.Time
}

func runFig5WithObserver(t *testing.T, observe bool) fig5Outcome {
	t.Helper()
	e, err := core.NewEngine()
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	s := sched.New(e, nil)
	ev := scsql.NewEvaluator(e, s.Catalog())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if observe {
		res, err := ev.Exec(`select streamof(sys_metrics('rp.%'));`)
		if err != nil {
			t.Fatalf("exec streamof: %v", err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = res.Stream.Drain() // runs until the scheduler closes the tick source
		}()
		go func() {
			defer wg.Done()
			var vt vtime.Time
			for {
				select {
				case <-stop:
					return
				default:
					vt = vt.Add(vtime.Millisecond)
					s.ObserveVTime(vt)
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}

	q, err := s.Submit(scsql.Figure5Query(30_000, 6))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	els, err := q.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	out := fig5Outcome{count: len(els), makespan: q.Makespan()}
	for id := 0; id < e.Env().ClusterSize(hw.BlueGene); id++ {
		n, err := e.Env().Node(hw.BlueGene, id)
		if err != nil {
			t.Fatalf("node %d: %v", id, err)
		}
		out.busy = append(out.busy, n.CPU.BusyTime())
		out.free = append(out.free, n.CPU.FreeAt())
	}

	close(stop)
	if err := s.Close(); err != nil {
		t.Fatalf("sched close: %v", err)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	return out
}

// TestCatalogSubscriberBitIdentity is the paper's non-perturbation
// requirement applied to the catalog: the same workload with an active
// streamof(sys_metrics()) subscriber (plus concurrent policy-clock ticks)
// produces a bit-identical virtual schedule.
func TestCatalogSubscriberBitIdentity(t *testing.T) {
	bare := runFig5WithObserver(t, false)
	observed := runFig5WithObserver(t, true)
	if bare.count != observed.count || bare.makespan != observed.makespan {
		t.Fatalf("result diverged: bare {n=%d, makespan=%d}, observed {n=%d, makespan=%d}",
			bare.count, bare.makespan, observed.count, observed.makespan)
	}
	for i := range bare.busy {
		if bare.busy[i] != observed.busy[i] || bare.free[i] != observed.free[i] {
			t.Fatalf("bg node %d schedule diverged: bare busy=%d free=%d, observed busy=%d free=%d",
				i, bare.busy[i], bare.free[i], observed.busy[i], observed.free[i])
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
