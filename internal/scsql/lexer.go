package scsql

import (
	"strings"
	"unicode"
)

var keywords = map[string]Kind{
	"select":   TokSelect,
	"from":     TokFrom,
	"where":    TokWhere,
	"and":      TokAnd,
	"in":       TokIn,
	"create":   TokCreate,
	"function": TokFunction,
	"as":       TokAs,
	"bag":      TokBag,
	"of":       TokOf,
}

// Lex tokenizes SCSQL source text. Comments run from "--" to end of line.
func Lex(src string) ([]Token, error) {
	var (
		toks      []Token
		line, col = 1, 1
	)
	runes := []rune(src)
	i := 0
	pos := func() Pos { return Pos{Line: line, Col: col} }
	advance := func() rune {
		r := runes[i]
		i++
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		return r
	}
	peek := func() rune {
		if i >= len(runes) {
			return 0
		}
		return runes[i]
	}
	peek2 := func() rune {
		if i+1 >= len(runes) {
			return 0
		}
		return runes[i+1]
	}

	for i < len(runes) {
		start := pos()
		r := peek()
		switch {
		case unicode.IsSpace(r):
			advance()
		case r == '-' && peek2() == '-':
			for i < len(runes) && peek() != '\n' {
				advance()
			}
		case r == '-' && peek2() == '>':
			advance()
			advance()
			toks = append(toks, Token{Kind: TokArrow, Text: "->", Pos: start})
		case r == '<' && peek2() == '=':
			advance()
			advance()
			toks = append(toks, Token{Kind: TokLessEq, Text: "<=", Pos: start})
		case r == '<' && peek2() == '>':
			advance()
			advance()
			toks = append(toks, Token{Kind: TokNotEq, Text: "<>", Pos: start})
		case r == '>' && peek2() == '=':
			advance()
			advance()
			toks = append(toks, Token{Kind: TokGreaterEq, Text: ">=", Pos: start})
		case r == '<':
			advance()
			toks = append(toks, Token{Kind: TokLess, Text: "<", Pos: start})
		case r == '>':
			advance()
			toks = append(toks, Token{Kind: TokGreater, Text: ">", Pos: start})
		case r == '+':
			advance()
			toks = append(toks, Token{Kind: TokPlus, Text: "+", Pos: start})
		case r == '-':
			advance()
			toks = append(toks, Token{Kind: TokMinus, Text: "-", Pos: start})
		case r == '*':
			advance()
			toks = append(toks, Token{Kind: TokStar, Text: "*", Pos: start})
		case r == '/':
			advance()
			toks = append(toks, Token{Kind: TokSlash, Text: "/", Pos: start})
		case r == '(':
			advance()
			toks = append(toks, Token{Kind: TokLParen, Text: "(", Pos: start})
		case r == ')':
			advance()
			toks = append(toks, Token{Kind: TokRParen, Text: ")", Pos: start})
		case r == '{':
			advance()
			toks = append(toks, Token{Kind: TokLBrace, Text: "{", Pos: start})
		case r == '}':
			advance()
			toks = append(toks, Token{Kind: TokRBrace, Text: "}", Pos: start})
		case r == '.':
			advance()
			toks = append(toks, Token{Kind: TokDot, Text: ".", Pos: start})
		case r == ',':
			advance()
			toks = append(toks, Token{Kind: TokComma, Text: ",", Pos: start})
		case r == ';':
			advance()
			toks = append(toks, Token{Kind: TokSemicolon, Text: ";", Pos: start})
		case r == '=':
			advance()
			toks = append(toks, Token{Kind: TokEquals, Text: "=", Pos: start})
		case r == '\'' || r == '"':
			quote := advance()
			var sb strings.Builder
			closed := false
			for i < len(runes) {
				c := advance()
				if c == quote {
					closed = true
					break
				}
				sb.WriteRune(c)
			}
			if !closed {
				return nil, errorfAt(start, "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		case unicode.IsDigit(r):
			var sb strings.Builder
			for i < len(runes) && (unicode.IsDigit(peek()) || peek() == '.') {
				sb.WriteRune(advance())
			}
			toks = append(toks, Token{Kind: TokNumber, Text: sb.String(), Pos: start})
		case unicode.IsLetter(r) || r == '_':
			var sb strings.Builder
			for i < len(runes) && (unicode.IsLetter(peek()) || unicode.IsDigit(peek()) || peek() == '_') {
				sb.WriteRune(advance())
			}
			word := sb.String()
			if k, ok := keywords[strings.ToLower(word)]; ok {
				toks = append(toks, Token{Kind: k, Text: word, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			return nil, errorfAt(start, "unexpected character %q", r)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: pos()})
	return toks, nil
}
