package scsql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the lexer and parser random garbage and
// mutated fragments of real queries; they must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := randomSource(rng)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_, _ = Parse(src) // error or statement, either is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// randomSource builds adversarial inputs: random bytes, token soup, and
// truncated/mutated real queries.
func randomSource(rng *rand.Rand) string {
	switch rng.Intn(3) {
	case 0: // random printable bytes
		b := make([]byte, rng.Intn(120))
		for i := range b {
			b[i] = byte(32 + rng.Intn(95))
		}
		return string(b)
	case 1: // token soup
		tokens := []string{
			"select", "from", "where", "and", "in", "sp", "bag", "of",
			"integer", "create", "function", "as", "->", "(", ")", "{", "}",
			",", ";", "=", "<", "<=", ">", ">=", "<>", "+", "-", "*", "/",
			"a", "b", "iota", "extract", "merge", "spv", "'x'", "42", "3.14",
		}
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		return sb.String()
	default: // mutated real query
		src := Figure5Query(1000, 2)
		if q, err := InboundQuery(1+rng.Intn(6), 2, 1000, 2); err == nil && rng.Intn(2) == 0 {
			src = q
		}
		b := []byte(src)
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0: // truncate
				if len(b) > 1 {
					b = b[:rng.Intn(len(b))]
				}
			case 1: // flip a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(32 + rng.Intn(95))
				}
			default: // duplicate a slice
				if len(b) > 2 {
					i := rng.Intn(len(b) - 1)
					j := i + rng.Intn(len(b)-i)
					b = append(b[:j:j], b[i:]...)
				}
			}
		}
		return string(b)
	}
}

// TestEvaluatorNeverPanicsOnParsedGarbage runs statements that parse but
// may be semantically nonsensical; evaluation must fail cleanly.
func TestEvaluatorNeverPanicsOnParsedGarbage(t *testing.T) {
	sources := []string{
		`select 1;`,
		`select 'str';`,
		`select {a, b} from sp a, sp b where a=sp(iota(1,1), 'be') and b=sp(iota(1,1), 'be');`,
		`select merge(1);`,
		`select extract(extract(a)) from sp a where a=sp(iota(1,1), 'be');`,
		`select sp(iota(1,1));`,
		`select spv((select 1 from integer i where i in iota(1,2)));`,
		`select count(1);`,
		`select iota(1, 'x');`,
		`select gen_array(-5, -5);`,
		`select winagg(iota(1,3), 'sum', -1, -1);`,
		`select x from integer x where x in iota(1,3) and x < 'str';`,
		`select radixcombine(merge({a,b,c})) from sp a, sp b, sp c where a=sp(iota(1,1)) and b=sp(iota(1,1)) and c=sp(iota(1,1));`,
	}
	for _, src := range sources {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", src, r)
				}
			}()
			e := newTestEngine(t)
			ev := NewEvaluator(e, nil)
			res, err := ev.Exec(src)
			if err == nil && res.Stream != nil {
				_, _ = res.Stream.Drain() // errors are acceptable; panics are not
			}
		}()
	}
}
