package scsql

import (
	"testing"
)

// drainAll executes src and returns every element value.
func drainAll(t *testing.T, ev *Evaluator, src string) []any {
	t.Helper()
	res, err := ev.Exec(src)
	if err != nil {
		t.Fatalf("exec: %v\nquery: %s", err, src)
	}
	if res.Stream == nil {
		t.Fatalf("statement produced no stream: %s", src)
	}
	els, err := res.Stream.Drain()
	if err != nil {
		t.Fatalf("drain: %v\nquery: %s", err, src)
	}
	out := make([]any, len(els))
	for i, el := range els {
		out[i] = el.Value
	}
	return out
}

// TestMonitorStreamsRegistry is the tentpole's query surface: after a
// measurement query runs, monitor() exposes its telemetry as an ordinary
// stream of rows.
func TestMonitorStreamsRegistry(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)

	// Before any query: the registry holds nothing under the link prefix.
	if rows := drainAll(t, ev, `select monitor('link.');`); len(rows) != 0 {
		t.Fatalf("monitor before any query returned %d rows", len(rows))
	}
	e.Reset()

	if got, want := execOne(t, ev, Figure5Query(30_000, 7)), int64(7); got != want {
		t.Fatalf("count = %v, want %v", got, want)
	}
	e.Reset() // the registry accumulates across resets

	rows := drainAll(t, ev, `select monitor('link.bytes.');`)
	if len(rows) == 0 {
		t.Fatal("monitor returned no link.bytes rows after a query")
	}
	var total int64
	var prevName string
	for _, row := range rows {
		bag, ok := row.([]any)
		if !ok || len(bag) != 3 {
			t.Fatalf("counter row shape = %#v, want [kind name value]", row)
		}
		if bag[0] != "counter" {
			t.Fatalf("row kind = %v, want counter", bag[0])
		}
		name := bag[1].(string)
		if name <= prevName {
			t.Fatalf("rows not sorted by name: %q after %q", name, prevName)
		}
		prevName = name
		total += bag[2].(int64)
	}
	if total <= 30_000*7 {
		t.Fatalf("link bytes %d should exceed the payload volume", total)
	}
	e.Reset()

	// Histogram rows carry count/sum/min/max.
	hrows := drainAll(t, ev, `select monitor('link.deliver_vt.mpi');`)
	if len(hrows) != 1 {
		t.Fatalf("got %d histogram rows, want 1", len(hrows))
	}
	hbag := hrows[0].([]any)
	if len(hbag) != 6 || hbag[0] != "histogram" {
		t.Fatalf("histogram row shape = %#v", hbag)
	}
	if hbag[2].(int64) <= 0 {
		t.Fatalf("histogram count = %v, want > 0", hbag[2])
	}
	e.Reset()

	// monitor() composes with ordinary stream operators.
	if v := execOne(t, ev, `select count(monitor('link.bytes.'));`); v.(int64) == 0 {
		t.Fatal("count(monitor(...)) = 0")
	}
}

func TestMonitorArgumentErrors(t *testing.T) {
	e := newTestEngine(t)
	ev := NewEvaluator(e, nil)
	if _, err := ev.Exec(`select monitor(42);`); err == nil {
		t.Fatal("monitor(42) did not fail")
	}
	if _, err := ev.Exec(`select monitor('a', 'b');`); err == nil {
		t.Fatal("monitor with two args did not fail")
	}
}
