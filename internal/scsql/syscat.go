package scsql

// syscat.go lowers the system catalog into SCSQL: registered sys_* tables
// (sys_sessions, sys_nodes, sys_links, sys_rps, sys_metrics) are
// first-class relations — sys_nodes() yields one catalog.Tuple per row, so
// the tables compose with count(), merge(), limit(), comprehension filters
// and field access (n.cluster, n.x). streamof(sys_table(...)) lifts a
// table into a live-delta stream paced on the virtual-time beat frontier.

import (
	"fmt"

	"scsq/internal/catalog"
	"scsq/internal/sqep"
)

// sysTableFor resolves a call against the engine's system catalog.
func (ev *Evaluator) sysTableFor(call *Call) (*catalog.Table, bool) {
	return ev.eng.SystemCatalog().Lookup(call.Name)
}

// sysPattern evaluates a sys table call's optional SQL-LIKE argument.
func (ev *Evaluator) sysPattern(t *catalog.Table, call *Call, env *scope) (string, error) {
	if !t.TakesPattern {
		if len(call.Args) != 0 {
			return "", errorfAt(call.Pos, "%s() takes no arguments, got %d", t.Name, len(call.Args))
		}
		return "", nil
	}
	switch len(call.Args) {
	case 0:
		return "", nil
	case 1:
		v, err := ev.evalScalar(call.Args[0], env)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", errorfAt(call.Args[0].ePos(), "%s() pattern must be a string, got %T", t.Name, v)
		}
		return s, nil
	default:
		return "", errorfAt(call.Pos, "%s() takes at most 1 argument, got %d", t.Name, len(call.Args))
	}
}

// compileSysTable lowers sys_table([pattern]) — one snapshot of the table,
// captured when the plan opens (like monitor(), not at compile time), one
// catalog.Tuple element per row.
func (ev *Evaluator) compileSysTable(t *catalog.Table, call *Call, env *scope) (sqep.Operator, error) {
	pattern, err := ev.sysPattern(t, call, env)
	if err != nil {
		return nil, err
	}
	return sqep.NewThunk(t.Name, func() ([]any, error) {
		rows, err := t.Snap(pattern)
		if err != nil {
			return nil, err
		}
		out := make([]any, len(rows))
		for i, r := range rows {
			out[i] = r
		}
		return out, nil
	}), nil
}

// vtimeTicker is the subset of the scheduler surface live-delta streams
// need: a coalescing virtual-time tick subscription (sched.Scheduler
// implements it; asserted dynamically to keep core decoupled from sched).
type vtimeTicker interface {
	SubscribeVTime() (<-chan struct{}, func())
}

// compileStreamOfSys lowers streamof(sys_table([pattern])): a live-delta
// stream that emits the full table on open, then — on each advance of the
// scheduler's virtual policy clock — only the rows whose values changed
// since the previous poll. Requires an attached scheduler: virtual time is
// the pacing source (heartbeat frontier via Scheduler.ObserveVTime), so
// observation never injects wall-clock nondeterminism into the run.
func (ev *Evaluator) compileStreamOfSys(t *catalog.Table, call *Call, env *scope) (sqep.Operator, error) {
	pattern, err := ev.sysPattern(t, call, env)
	if err != nil {
		return nil, err
	}
	sch := ev.eng.Scheduler()
	ticker, ok := sch.(vtimeTicker)
	if sch == nil || !ok {
		return nil, errorfAt(call.Pos, "streamof(%s()): no query scheduler attached to pace the live stream", t.Name)
	}
	tick, stop := ticker.SubscribeVTime()
	snap := func() ([]any, []string, error) {
		rows, err := t.Snap(pattern)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]any, len(rows))
		keys := make([]string, len(rows))
		for i, r := range rows {
			vals[i] = r
			keys[i] = r.Key()
		}
		return vals, keys, nil
	}
	d := sqep.NewDeltaPoll(fmt.Sprintf("streamof(%s)", t.Name), snap, tick, stop)
	// A pure client-plan live stream has no stream processes to poison, so
	// session cancellation reaches it through the query's cancel signal
	// rather than through the inbox graph.
	d.Done, d.DoneErr = ev.eng.BuildCancelSignal()
	return d, nil
}
