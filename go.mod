module scsq

go 1.23
